(* Seeded scenario generator: perturbs the sysmodel/toolchain/elf
   builders into thousands of binary × site configurations for the
   differential agreement harness.

   Determinism discipline: every draw comes from a keyed PRNG stream
   ("scen/<index>/<coordinate>"), and parameter draws are made whether or
   not the perturbation they parameterize is kept.  A scenario is thus a
   pure function of (seed, index, keep) — the contract the disagreement
   minimizer relies on when it undoes perturbations one at a time. *)

open Feam_util
open Feam_mpi
open Feam_sysmodel
open Feam_toolchain

let v = Version.of_string_exn

type perturbation =
  | Cross_isa
  | Glibc_downgrade
  | Drop_stack
  | Unregistered_stack
  | Misconfigured_stack
  | Stale_ld_cache
  | Remove_lib of string
  | Major_skew of string
  | Vintage_downgrade of string
  | Foreign_lib of string
  | Ld_path_interpose of string
  | Rpath_decoy of string
  | Runpath_ghost
  | Strip_comments
  | Strip_verneed
  | Drop_bundle_copy of string
  | Remove_interp

(* Stable kebab-case tag, doubling as the draw key for inclusion. *)
let tag = function
  | Cross_isa -> "cross-isa"
  | Glibc_downgrade -> "glibc-downgrade"
  | Drop_stack -> "drop-stack"
  | Unregistered_stack -> "unregistered-stack"
  | Misconfigured_stack -> "misconfigured-stack"
  | Stale_ld_cache -> "stale-ld-cache"
  | Remove_lib _ -> "remove-lib"
  | Major_skew _ -> "major-skew"
  | Vintage_downgrade _ -> "vintage-downgrade"
  | Foreign_lib _ -> "foreign-lib"
  | Ld_path_interpose _ -> "ld-path-interpose"
  | Rpath_decoy _ -> "rpath-decoy"
  | Runpath_ghost -> "runpath-ghost"
  | Strip_comments -> "strip-comments"
  | Strip_verneed -> "strip-verneed"
  | Drop_bundle_copy _ -> "drop-bundle-copy"
  | Remove_interp -> "remove-interp"

let payload = function
  | Remove_lib l | Major_skew l | Vintage_downgrade l | Foreign_lib l
  | Ld_path_interpose l | Rpath_decoy l | Drop_bundle_copy l ->
    Some l
  | Cross_isa | Glibc_downgrade | Drop_stack | Unregistered_stack
  | Misconfigured_stack | Stale_ld_cache | Runpath_ghost | Strip_comments
  | Strip_verneed | Remove_interp ->
    None

let perturbation_to_string p =
  match payload p with Some l -> tag p ^ " " ^ l | None -> tag p

let perturbation_of_string s =
  let kind, lib =
    match String.index_opt s ' ' with
    | Some i ->
      ( String.sub s 0 i,
        Some (String.sub s (i + 1) (String.length s - i - 1)) )
    | None -> (s, None)
  in
  match (kind, lib) with
  | "cross-isa", None -> Some Cross_isa
  | "glibc-downgrade", None -> Some Glibc_downgrade
  | "drop-stack", None -> Some Drop_stack
  | "unregistered-stack", None -> Some Unregistered_stack
  | "misconfigured-stack", None -> Some Misconfigured_stack
  | "stale-ld-cache", None -> Some Stale_ld_cache
  | "remove-lib", Some l -> Some (Remove_lib l)
  | "major-skew", Some l -> Some (Major_skew l)
  | "vintage-downgrade", Some l -> Some (Vintage_downgrade l)
  | "foreign-lib", Some l -> Some (Foreign_lib l)
  | "ld-path-interpose", Some l -> Some (Ld_path_interpose l)
  | "rpath-decoy", Some l -> Some (Rpath_decoy l)
  | "runpath-ghost", None -> Some Runpath_ghost
  | "strip-comments", None -> Some Strip_comments
  | "strip-verneed", None -> Some Strip_verneed
  | "drop-bundle-copy", Some l -> Some (Drop_bundle_copy l)
  | "remove-interp", None -> Some Remove_interp
  | _ -> None

type t = {
  sc_seed : int;
  sc_index : int;
  sc_all : perturbation list;
  sc_keep : int list;
  sc_home : Site.t;
  sc_target : Site.t;
  sc_home_install : Stack_install.t option;
  sc_target_install : Stack_install.t option;
  sc_program : Compile.program;
  sc_binary_path : string;
  sc_binary_bytes : string;
  sc_extra_ld_dirs : string list;
}

let id t = Printf.sprintf "%d/%d" t.sc_seed t.sc_index

let applied t =
  List.filteri (fun i _ -> List.mem i t.sc_keep) t.sc_all

(* -- Site profiles -------------------------------------------------------- *)

type profile = {
  pf_glibc : string;
  pf_gcc : string;
  pf_flavor : Distro.flavor;
  pf_distro : string;
  pf_kernel : string;
}

(* The Table II era, oldest first (index 0 is the Glibc_downgrade
   override target). *)
let profiles =
  [
    { pf_glibc = "2.3.4"; pf_gcc = "3.4.6"; pf_flavor = Distro.Centos;
      pf_distro = "4.9"; pf_kernel = "2.6.9" };
    { pf_glibc = "2.5"; pf_gcc = "4.1.2"; pf_flavor = Distro.Rhel;
      pf_distro = "5.6"; pf_kernel = "2.6.18" };
    { pf_glibc = "2.11.1"; pf_gcc = "4.4.3"; pf_flavor = Distro.Sles;
      pf_distro = "11"; pf_kernel = "2.6.32" };
    { pf_glibc = "2.12"; pf_gcc = "4.4.5"; pf_flavor = Distro.Rhel;
      pf_distro = "6.1"; pf_kernel = "2.6.32" };
  ]

let generation_of pf =
  if Version.major (v pf.pf_distro) <= 5 then Libdb.Old_generation
  else Libdb.New_generation

let batch =
  Batch.make
    ~queues:[ { Batch.queue_name = "debug"; wait_seconds = 5.0 } ]
    Batch.Pbs

let make_site ~name ~machine pf =
  Site.make
    ~description:
      (Printf.sprintf "generated %s (%s %s, glibc %s)" name
         (Distro.flavor_name pf.pf_flavor) pf.pf_distro pf.pf_glibc)
    ~compilers:[ Compiler.make Compiler.Gnu (v pf.pf_gcc) ]
    ~seed:0 ~fault_model:Fault_model.none ~machine
    ~distro:
      (Distro.make pf.pf_flavor ~version:(v pf.pf_distro)
         ~kernel:(v pf.pf_kernel))
    ~glibc:(v pf.pf_glibc) ~interconnect:Interconnect.Ethernet ~batch name

(* -- Library-image surgery ------------------------------------------------ *)

(* Paths carrying [name] (the image) or its dev link at [site]. *)
let lib_paths site name =
  Vfs.find_by_basename (Site.vfs site) (fun b -> b = name)

let dev_link_paths site name =
  match Soname.of_string name with
  | None -> []
  | Some so ->
    let link = Soname.link_name so in
    if link = name then []
    else Vfs.find_by_basename (Site.vfs site) (fun b -> b = link)

(* Rewrite every installed image of [name] at [site] through a spec
   transform; a no-op when the library (or its parse) is absent. *)
let mutate_lib site name f =
  List.iter
    (fun path ->
      match Vfs.find (Site.vfs site) path with
      | Some { Vfs.kind = Vfs.Elf bytes; declared_size } -> (
        match Feam_elf.Reader.spec_of_bytes bytes with
        | Error _ -> ()
        | Ok spec ->
          Vfs.add ~declared_size (Site.vfs site) path
            (Vfs.Elf (Feam_elf.Builder.build (f spec))))
      | Some _ | None -> ())
    (lib_paths site name)

(* Drop the newest vintage feature symbol a library exports, keeping
   its soname — the channel on which soname-major acceptance is
   unsound. *)
let drop_newest_feature (spec : Feam_elf.Spec.t) =
  let feature_rank (d : Feam_elf.Spec.dynsym) =
    if not d.Feam_elf.Spec.sym_defined then None
    else begin
      let name = d.Feam_elf.Spec.sym_name in
      let marker = "_feature_r" in
      let mlen = String.length marker and nlen = String.length name in
      let rec find i =
        if i + mlen > nlen then None
        else if String.sub name i mlen = marker then
          int_of_string_opt (String.sub name (i + mlen) (nlen - i - mlen))
        else find (i + 1)
      in
      find 0
    end
  in
  let newest =
    List.fold_left
      (fun acc d ->
        match feature_rank d with
        | Some r when acc < r -> r
        | _ -> acc)
      0 spec.Feam_elf.Spec.dynsyms
  in
  if newest = 0 then spec
  else
    {
      spec with
      Feam_elf.Spec.dynsyms =
        List.filter
          (fun d -> feature_rank d <> Some newest)
          spec.Feam_elf.Spec.dynsyms;
    }

(* Make the library look copied from a newer-glibc system: its libc
   verneed (and one import) references a version the target's C library
   does not define.  No-op when the target already runs the newest
   release the model knows. *)
let foreignize ~target_glibc (spec : Feam_elf.Spec.t) =
  let newer =
    List.find_opt
      (fun r -> Version.compare r target_glibc > 0)
      Glibc.release_history
  in
  match newer with
  | None -> spec
  | Some ver ->
    let sym = Glibc.symbol_of_version ver in
    let libc = Soname.to_string Glibc.libc_soname in
    let add_verneed vns =
      let updated = ref false in
      let vns =
        List.map
          (fun (vn : Feam_elf.Spec.verneed) ->
            if vn.Feam_elf.Spec.vn_file = libc then begin
              updated := true;
              { vn with Feam_elf.Spec.vn_versions =
                  vn.Feam_elf.Spec.vn_versions @ [ sym ] }
            end
            else vn)
          vns
      in
      if !updated then vns
      else vns @ [ { Feam_elf.Spec.vn_file = libc; vn_versions = [ sym ] } ]
    in
    let import =
      {
        Feam_elf.Spec.sym_name = Glibc.representative_symbol ver;
        sym_defined = false;
        sym_binding = Feam_elf.Spec.Global;
        sym_version = Some sym;
      }
    in
    {
      spec with
      Feam_elf.Spec.verneeds = add_verneed spec.Feam_elf.Spec.verneeds;
      dynsyms = spec.Feam_elf.Spec.dynsyms @ [ import ];
    }

(* Bump a library's soname major, renaming its on-disk image: the old
   major disappears, the new one answers a name nothing requested. *)
let apply_major_skew site name =
  match Soname.of_string name with
  | None -> ()
  | Some so -> (
    match Soname.version so with
    | [] -> ()
    | major :: rest ->
      let bumped = Soname.make ~version:((major + 1) :: rest) (Soname.base so) in
      let new_name = Soname.to_string bumped in
      List.iter
        (fun path ->
          match Vfs.find (Site.vfs site) path with
          | Some { Vfs.kind = Vfs.Elf bytes; declared_size } -> (
            match Feam_elf.Reader.spec_of_bytes bytes with
            | Error _ -> ()
            | Ok spec ->
              let spec' =
                {
                  spec with
                  Feam_elf.Spec.soname = Some new_name;
                  verdefs =
                    List.map
                      (fun d -> if d = name then new_name else d)
                      spec.Feam_elf.Spec.verdefs;
                }
              in
              Vfs.remove (Site.vfs site) path;
              Vfs.add ~declared_size (Site.vfs site)
                (Vfs.dirname path ^ "/" ^ new_name)
                (Vfs.Elf (Feam_elf.Builder.build spec')))
          | Some _ | None -> ())
        (lib_paths site name);
      List.iter (Vfs.remove (Site.vfs site)) (dev_link_paths site name))

let apply_remove_lib site name =
  List.iter (Vfs.remove (Site.vfs site)) (lib_paths site name);
  List.iter (Vfs.remove (Site.vfs site)) (dev_link_paths site name)

let interpose_dir = "/opt/interpose/lib"
let decoy_dir = "/opt/decoy/lib"

(* A stale build of [name] placed where LD_LIBRARY_PATH will find it
   first: same soname, one vintage step behind. *)
let apply_interpose site name =
  match lib_paths site name with
  | [] -> ()
  | path :: _ -> (
    match Vfs.find (Site.vfs site) path with
    | Some { Vfs.kind = Vfs.Elf bytes; declared_size } -> (
      match Feam_elf.Reader.spec_of_bytes bytes with
      | Error _ -> ()
      | Ok spec ->
        Vfs.add ~declared_size (Site.vfs site)
          (interpose_dir ^ "/" ^ name)
          (Vfs.Elf (Feam_elf.Builder.build (drop_newest_feature spec))))
    | Some _ | None -> ())

(* A wrong-architecture build of [name] in the decoy directory the
   binary's DT_RPATH points at. *)
let apply_decoy site name =
  match lib_paths site name with
  | [] -> ()
  | path :: _ -> (
    match Vfs.find (Site.vfs site) path with
    | Some { Vfs.kind = Vfs.Elf bytes; declared_size } -> (
      match Feam_elf.Reader.spec_of_bytes bytes with
      | Error _ -> ()
      | Ok spec ->
        let wrong_machine =
          match spec.Feam_elf.Spec.machine with
          | Feam_elf.Types.PPC64 -> Feam_elf.Types.X86_64
          | _ -> Feam_elf.Types.PPC64
        in
        let spec' =
          Feam_elf.Spec.make ~file_type:Feam_elf.Types.ET_DYN
            ?soname:spec.Feam_elf.Spec.soname
            ~needed:spec.Feam_elf.Spec.needed
            ~comments:spec.Feam_elf.Spec.comments wrong_machine
        in
        Vfs.add ~declared_size (Site.vfs site) (decoy_dir ^ "/" ^ name)
          (Vfs.Elf (Feam_elf.Builder.build spec')))
    | Some _ | None -> ())

let apply_remove_interp site =
  let loader = Feam_elf.Types.default_interp (Site.machine site) in
  Vfs.remove (Site.vfs site) loader

(* -- Generation ----------------------------------------------------------- *)

(* Inclusion probability per perturbation, in canonical catalog order.
   Tuned so a scenario carries ~1.5 perturbations on average: enough
   healthy runs to score precision, enough compound cases to give the
   minimizer real work. *)
let catalog ~focus =
  [
    (0.06, Cross_isa);
    (0.10, Glibc_downgrade);
    (0.08, Drop_stack);
    (0.08, Unregistered_stack);
    (0.08, Misconfigured_stack);
    (0.10, Stale_ld_cache);
    (0.10, Remove_lib focus);
    (0.10, Major_skew focus);
    (0.12, Vintage_downgrade focus);
    (0.12, Foreign_lib focus);
    (0.08, Ld_path_interpose focus);
    (0.08, Rpath_decoy focus);
    (0.06, Runpath_ghost);
    (0.10, Strip_comments);
    (0.08, Strip_verneed);
    (0.08, Drop_bundle_copy focus);
    (0.05, Remove_interp);
  ]

let build ~seed ~index ?keep () =
  (* Per-scenario world: image counters restart so scenario i built
     standalone equals scenario i built mid-corpus. *)
  Build_id.reset ();
  let stream what = Prng.of_key ~seed (Printf.sprintf "scen/%d/%s" index what) in
  let draw_bool what p = Prng.bool (stream what) p in
  let draw_pick what xs = Prng.pick (stream what) xs in
  (* Base configuration. *)
  let home_pf = draw_pick "home-profile" profiles in
  let target_pf0 = draw_pick "target-profile" profiles in
  let uses_mpi = draw_bool "uses-mpi" 0.6 in
  let language =
    if draw_bool "language" 0.3 then Stack.Fortran else Stack.C
  in
  let demanding = draw_bool "appetite" 0.35 in
  let impl = draw_pick "impl" [ Impl.Open_mpi; Impl.Mpich2 ] in
  let with_scientific = draw_bool "scientific" 0.5 in
  let family = draw_pick "family" [ Libdb.Fftw; Libdb.Hdf5 ] in
  let sci_soname =
    Soname.to_string (Libdb.scientific_soname family (generation_of home_pf))
  in
  let focus =
    if with_scientific && draw_bool "focus" 0.5 then sci_soname
    else Soname.to_string Libdb.libz.Libdb.soname
  in
  (* Perturbation draws: inclusion per catalog entry, keyed by tag so
     entries never shift each other. *)
  let eligible = function
    | Drop_stack | Unregistered_stack | Misconfigured_stack -> uses_mpi
    | _ -> true
  in
  let all =
    List.filter_map
      (fun (p, pert) ->
        let included =
          Prng.keyed_bool ~seed ~p
            (Printf.sprintf "scen/%d/pert/%s" index (tag pert))
        in
        if included && eligible pert then Some pert else None)
      (catalog ~focus)
  in
  let keep =
    match keep with
    | Some k -> List.sort_uniq compare (List.filter (fun i -> i >= 0 && i < List.length all) k)
    | None -> List.init (List.length all) (fun i -> i)
  in
  let applied = List.filteri (fun i _ -> List.mem i keep) all in
  let has p = List.exists (fun q -> tag q = tag p) applied in
  (* Sites. *)
  let target_pf = if has Glibc_downgrade then List.hd profiles else target_pf0 in
  let target_machine =
    if has Cross_isa then Feam_elf.Types.PPC64 else Feam_elf.Types.X86_64
  in
  let home = make_site ~name:"home" ~machine:Feam_elf.Types.X86_64 home_pf in
  let target = make_site ~name:"target" ~machine:target_machine target_pf in
  let mk_stack pf =
    Stack.make ~impl ~impl_version:(v "1.4")
      ~compiler:(Compiler.make Compiler.Gnu (v pf.pf_gcc))
      ~interconnect:Interconnect.Ethernet
  in
  let home_install =
    let installs =
      Provision.provision_site home
        ~stacks:
          (if uses_mpi then [ (mk_stack home_pf, Stack_install.Functioning) ]
           else [])
    in
    match installs with i :: _ -> Some i | [] -> None
  in
  let target_install =
    ignore (Provision.provision_site target ~stacks:[]);
    if uses_mpi && not (has Drop_stack) then begin
      let health =
        if has Misconfigured_stack then
          Stack_install.Misconfigured
            "administrator updated the compiler without retesting this stack"
        else Stack_install.Functioning
      in
      let registered = not (has Unregistered_stack) in
      let install =
        Provision.provision_stack target ~health ~registered (mk_stack target_pf)
      in
      Modules_tool.provision target;
      Some install
    end
    else None
  in
  (* The program and its compile at home. *)
  let extra_libs =
    Libdb.libz.Libdb.soname
    :: (if with_scientific then [ Soname.of_string_exn sci_soname ] else [])
  in
  let glibc_appetite = if demanding then v home_pf.pf_glibc else Libdb.portable in
  let program =
    Compile.program ~language ~uses_mpi ~glibc_appetite ~extra_libs
      (Printf.sprintf "scenapp_%d" index)
  in
  let binary_path =
    if uses_mpi then
      match home_install with
      | Some install -> (
        match Compile.compile_mpi_to home install program ~dir:"/home/user/bin" with
        | Ok path -> path
        | Error e -> failwith ("scengen compile: " ^ Compile.error_to_string e))
      | None -> failwith "scengen: MPI program without a home stack"
    else
      match Compile.compile_serial home program with
      | Error e -> failwith ("scengen compile: " ^ Compile.error_to_string e)
      | Ok image ->
        let path = "/home/user/bin/" ^ program.Compile.prog_name in
        Vfs.add
          ~declared_size:(Compile.declared_size program)
          (Site.vfs home) path (Vfs.Elf image);
        path
  in
  (* Binary perturbations, rewritten in place at home so the source
     phase (and every copy taken from it) sees the tampered image. *)
  let original_bytes =
    match Vfs.find (Site.vfs home) binary_path with
    | Some { Vfs.kind = Vfs.Elf bytes; _ } -> bytes
    | _ -> failwith "scengen: compiled binary vanished"
  in
  let binary_spec_mutations =
    List.concat
      [
        (if has (Rpath_decoy focus) then
           [ (fun s -> { s with Feam_elf.Spec.rpath = Some decoy_dir }) ]
         else []);
        (if has Runpath_ghost then
           [ (fun s -> { s with Feam_elf.Spec.runpath = Some "/tmp/ghost-libs" }) ]
         else []);
        (if has Strip_verneed then
           [ (fun s -> { s with Feam_elf.Spec.verneeds = [] }) ]
         else []);
        (if has Strip_comments then
           [ (fun s -> { s with Feam_elf.Spec.comments = [] }) ]
         else []);
      ]
  in
  let binary_bytes =
    if binary_spec_mutations = [] then original_bytes
    else begin
      match Feam_elf.Reader.spec_of_bytes original_bytes with
      | Error _ -> original_bytes
      | Ok spec ->
        let spec' =
          List.fold_left (fun s f -> f s) spec binary_spec_mutations
        in
        let bytes = Feam_elf.Builder.build spec' in
        Vfs.add
          ~declared_size:(Compile.declared_size program)
          (Site.vfs home) binary_path (Vfs.Elf bytes);
        (* A stripped .comment hides the binary's identity from the
           provenance registry too — that is the point of the
           perturbation.  Every other tamper keeps the program's ABI
           identity. *)
        (if not (has Strip_comments) then
           match Provenance.find original_bytes with
           | Some prov -> Provenance.register bytes prov
           | None -> ());
        bytes
    end
  in
  (* Target-side library surgery, in canonical catalog order. *)
  if has Stale_ld_cache then Site.set_ld_cache_current target false;
  if has (Remove_lib focus) then apply_remove_lib target focus;
  if has (Major_skew focus) then apply_major_skew target focus;
  if has (Vintage_downgrade focus) then
    mutate_lib target focus drop_newest_feature;
  if has (Foreign_lib focus) then
    mutate_lib target focus (foreignize ~target_glibc:(Site.glibc target));
  if has (Ld_path_interpose focus) then apply_interpose target focus;
  if has (Rpath_decoy focus) then apply_decoy target focus;
  if has Remove_interp then apply_remove_interp target;
  let extra_ld_dirs =
    if has (Ld_path_interpose focus) then [ interpose_dir ] else []
  in
  {
    sc_seed = seed;
    sc_index = index;
    sc_all = all;
    sc_keep = keep;
    sc_home = home;
    sc_target = target;
    sc_home_install = home_install;
    sc_target_install = target_install;
    sc_program = program;
    sc_binary_path = binary_path;
    sc_binary_bytes = binary_bytes;
    sc_extra_ld_dirs = extra_ld_dirs;
  }

let bundle_filter t bundle =
  let dropped =
    List.filter_map
      (function Drop_bundle_copy l -> Some l | _ -> None)
      (applied t)
  in
  if dropped = [] then bundle
  else
    {
      bundle with
      Feam_core.Bundle.copies =
        List.filter
          (fun c ->
            not (List.mem c.Feam_core.Bdc.copy_request dropped))
          bundle.Feam_core.Bundle.copies;
    }

let describe t =
  let perts =
    match applied t with
    | [] -> "no perturbations"
    | ps -> String.concat ", " (List.map perturbation_to_string ps)
  in
  Printf.sprintf "%s: %s %s (%s -> %s); %s" (id t)
    (if t.sc_program.Compile.uses_mpi then "mpi" else "serial")
    t.sc_program.Compile.prog_name
    (Version.to_string (Site.glibc t.sc_home))
    (Version.to_string (Site.glibc t.sc_target))
    perts
