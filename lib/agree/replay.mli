(** Replay of journaled agreement corpora: rebuild every journaled
    scenario from its (seed, index, keep) coordinates, rerun the four
    predictors, and compare the re-rendered report byte-for-byte with
    the report text the journal recorded. *)

type outcome = {
  runs : Harness.run list;  (** the re-executed corpus *)
  rendered : string;  (** {!Harness.render_report} of the rerun *)
  recorded : string option;  (** report text the journal recorded *)
  matches : bool;  (** [rendered] equals [recorded], byte for byte *)
}

(** Does this journal carry an agreement corpus? *)
val has_corpus : Feam_flightrec.Journal.t -> bool

(** Rebuild and rerun every journaled scenario.  Errors when the
    journal has no [agree.scenario] payloads or one is malformed. *)
val of_journal : Feam_flightrec.Journal.t -> (outcome, string) result
