(* The agreement harness.  One scenario flows through:

     source phase at home  -> bundle (shared BDC description)
     EDC at the target     -> discovery (shared environment pass)
     TEC (basic)           -> library-level determinants
     lint                  -> rule findings over bundle + target facts
     symcheck              -> ld.so binding over the live target closure
     oracle                -> ground-truth launch, fault-free params

   All four verdicts are normalized into the lattice; a predictor is
   unsound on the scenario when it was strictly ready and the oracle
   failed with a class the predictor claims to detect. *)

open Feam_util
open Feam_sysmodel
open Feam_evalharness

type run = {
  r_scenario : Scengen.t;
  r_tec : Verdict.t;
  r_lint : Verdict.t;
  r_sym : Verdict.t;
  r_oracle : Verdict.t;
  r_failure : Feam_dynlinker.Exec.failure option;
  r_unsound : Verdict.predictor list;
  r_findings : Feam_core.Diagnose.finding list;
}

let verdict_of r = function
  | Verdict.Tec -> r.r_tec
  | Verdict.Lint -> r.r_lint
  | Verdict.Symcheck -> r.r_sym
  | Verdict.Oracle -> r.r_oracle

let disagrees r =
  let bits =
    List.map (fun p -> Verdict.accepts (verdict_of r p)) Verdict.predictors
  in
  List.exists (fun b -> b <> List.hd bits) bits

let staged_dir = "/home/user/migrated"

(* Journal one scenario and its verdicts; no-op unless recording. *)
let record_run r =
  if Feam_flightrec.Recorder.enabled () then begin
    let sc = r.r_scenario in
    Feam_flightrec.Recorder.payload ~kind:"agree.scenario"
      (Json.Obj
         [
           ("seed", Json.Int sc.Scengen.sc_seed);
           ("index", Json.Int sc.Scengen.sc_index);
           ("keep", Json.List (List.map (fun i -> Json.Int i) sc.Scengen.sc_keep));
           ( "drawn",
             Json.List
               (List.map
                  (fun p -> Json.Str (Scengen.perturbation_to_string p))
                  sc.Scengen.sc_all) );
           ( "applied",
             Json.List
               (List.map
                  (fun p -> Json.Str (Scengen.perturbation_to_string p))
                  (Scengen.applied sc)) );
           ( "program",
             Json.Str sc.Scengen.sc_program.Feam_toolchain.Compile.prog_name );
           ("mpi", Json.Bool sc.Scengen.sc_program.Feam_toolchain.Compile.uses_mpi);
         ]);
    List.iter
      (fun p ->
        let v = verdict_of r p in
        Feam_flightrec.Recorder.decision
          ~determinant:("agree." ^ Verdict.predictor_name p)
          ~verdict:(Verdict.level_to_string v.Verdict.v_level)
          [
            ("scenario", Json.Str (Scengen.id sc));
            ( "attribution",
              Json.List
                (List.map
                   (fun a -> Json.Str a.Verdict.at_source)
                   v.Verdict.v_attribution) );
          ])
      Verdict.predictors
  end

let run_one (sc : Scengen.t) =
  let open Scengen in
  let home_env =
    match sc.sc_home_install with
    | Some install -> Modules_tool.load_stack (Site.base_env sc.sc_home) install
    | None -> Site.base_env sc.sc_home
  in
  (* Shared BDC pass: the source phase describes the binary once; its
     description feeds TEC, lint and the bundle alike. *)
  let bundle =
    match
      Feam_core.Phases.source_phase Feam_core.Config.default sc.sc_home
        home_env ~binary_path:sc.sc_binary_path
    with
    | Ok b -> Scengen.bundle_filter sc b
    | Error e ->
      failwith (Printf.sprintf "agree %s: source phase failed: %s" (id sc) e)
  in
  (* The binary migrates: staged at the target, judged there. *)
  let staged = staged_dir ^ "/" ^ sc.sc_program.Feam_toolchain.Compile.prog_name in
  Vfs.add
    ~declared_size:(Feam_toolchain.Compile.declared_size sc.sc_program)
    (Site.vfs sc.sc_target) staged (Vfs.Elf sc.sc_binary_bytes);
  let env =
    let base =
      match sc.sc_target_install with
      | Some install ->
        Modules_tool.load_stack (Site.base_env sc.sc_target) install
      | None -> Site.base_env sc.sc_target
    in
    List.fold_left
      (fun e dir -> Env.prepend_path e "LD_LIBRARY_PATH" dir)
      base sc.sc_extra_ld_dirs
  in
  (* Shared EDC pass. *)
  let discovery =
    Feam_core.Edc.discover ~env_type:`Target sc.sc_target env
  in
  let tec =
    Feam_core.Tec.evaluate sc.sc_target env
      {
        Feam_core.Tec.config =
          { Feam_core.Config.default with
            Feam_core.Config.binary_path = Some staged };
        description = bundle.Feam_core.Bundle.binary_description;
        binary_path = Some staged;
        bundle = None;
        discovery;
      }
  in
  let ctx =
    Feam_analysis.Context.of_bundle
      ~target:(Feam_analysis.Context.target_of_site sc.sc_target) bundle
  in
  let findings = Feam_analysis.Engine.run ctx in
  let sym =
    match Feam_analysis.Factbase.spec_of_bytes sc.sc_binary_bytes with
    | Error _ ->
      (* an unparsable binary binds nothing; symcheck has no scope *)
      Feam_symcheck.Symcheck.run []
    | Ok spec ->
      Feam_symcheck.Symcheck.of_resolve
        (Feam_dynlinker.Resolve.run sc.sc_target env spec)
  in
  let mode =
    if sc.sc_program.Feam_toolchain.Compile.uses_mpi then
      Feam_dynlinker.Exec.Mpi 4
    else Feam_dynlinker.Exec.Serial
  in
  let outcome =
    Feam_dynlinker.Exec.run ~params:Fault_model.none sc.sc_target env
      ~binary_path:staged ~mode
  in
  let r_failure =
    match outcome with
    | Feam_dynlinker.Exec.Success -> None
    | Feam_dynlinker.Exec.Failure f -> Some f
  in
  let r_tec = Verdict.of_predict tec in
  let r_lint = Verdict.of_findings findings in
  let r_sym = Verdict.of_symcheck sym in
  let r_oracle = Verdict.of_outcome outcome in
  let r_unsound =
    match r_failure with
    | None -> []
    | Some f ->
      List.filter
        (fun p ->
          let v =
            match p with
            | Verdict.Tec -> r_tec
            | Verdict.Lint -> r_lint
            | Verdict.Symcheck -> r_sym
            | Verdict.Oracle -> r_oracle
          in
          Verdict.strictly_ready v && Verdict.claims p f)
        [ Verdict.Tec; Verdict.Lint; Verdict.Symcheck ]
  in
  let r =
    {
      r_scenario = sc;
      r_tec;
      r_lint;
      r_sym;
      r_oracle;
      r_failure;
      r_unsound;
      r_findings = findings;
    }
  in
  record_run r;
  r

let run_corpus ~seed ~count () =
  Feam_core.Bdc.set_describe_memo ();
  let runs =
    List.init count (fun index ->
        let r = run_one (Scengen.build ~seed ~index ()) in
        Feam_obs.Metrics.incr "agree.scenarios";
        if disagrees r then Feam_obs.Metrics.incr "agree.disagreements";
        if r.r_unsound <> [] then Feam_obs.Metrics.incr "agree.unsound";
        r)
  in
  Feam_core.Bdc.clear_describe_memo ();
  runs

let rerun ~seed ~index ~keep = run_one (Scengen.build ~seed ~index ~keep ())

(* -- Scoring -------------------------------------------------------------- *)

(* Positive class = "predicts failure": a predictor scores a true
   positive when it rejects a scenario the oracle also rejects. *)
let confusion runs p =
  List.fold_left
    (fun (tp, fp, fn, tn) r ->
      let rejects = not (Verdict.accepts (verdict_of r p)) in
      let fails = not (Verdict.accepts r.r_oracle) in
      match (rejects, fails) with
      | true, true -> (tp + 1, fp, fn, tn)
      | true, false -> (tp, fp + 1, fn, tn)
      | false, true -> (tp, fp, fn + 1, tn)
      | false, false -> (tp, fp, fn, tn + 1))
    (0, 0, 0, 0) runs

let unsound_count runs p =
  List.length (List.filter (fun r -> List.mem p r.r_unsound) runs)

let score_table runs =
  let tec_accepts = List.filter (fun r -> Verdict.accepts r.r_tec) runs in
  let row p =
    let tp, fp, fn, tn = confusion runs p in
    let overturn =
      if p = Verdict.Tec then "-"
      else
        Table.percent
          (List.length
             (List.filter
                (fun r -> not (Verdict.accepts (verdict_of r p)))
                tec_accepts))
          (List.length tec_accepts)
    in
    [
      Verdict.predictor_name p;
      Table.percent tp (tp + fp);
      Table.percent tp (tp + fn);
      Table.percent (tp + tn) (List.length runs);
      overturn;
      string_of_int (unsound_count runs p);
    ]
  in
  Table.make ~title:"Predictor agreement against the dynamic-linker oracle"
    ~header:
      [ "Predictor"; "Precision"; "Recall"; "Accuracy"; "Overturns TEC";
        "Unsound" ]
    (List.map row [ Verdict.Tec; Verdict.Lint; Verdict.Symcheck ])

let pairwise_table runs =
  let agree a b =
    List.length
      (List.filter
         (fun r ->
           Verdict.accepts (verdict_of r a) = Verdict.accepts (verdict_of r b))
         runs)
  in
  let n = List.length runs in
  let row a =
    Verdict.predictor_name a
    :: List.map (fun b -> Table.percent (agree a b) n) Verdict.predictors
  in
  Table.make ~title:"Pairwise acceptance agreement"
    ~header:("" :: List.map Verdict.predictor_name Verdict.predictors)
    (List.map row Verdict.predictors)

let level_letter = function
  | Verdict.Ready -> "R"
  | Verdict.Degraded -> "D"
  | Verdict.Not_ready -> "N"

let pattern r =
  String.concat ""
    (List.map (fun p -> level_letter (verdict_of r p).Verdict.v_level)
       Verdict.predictors)

let disagreement_table runs =
  let tally = Hashtbl.create 16 in
  List.iter
    (fun r ->
      if disagrees r then begin
        let key = pattern r in
        let count, example, classes =
          Option.value (Hashtbl.find_opt tally key)
            ~default:(0, Scengen.id r.r_scenario, [])
        in
        let classes =
          match r.r_failure with
          | Some f when not (List.mem (Verdict.failure_class f) classes) ->
            classes @ [ Verdict.failure_class f ]
          | _ -> classes
        in
        Hashtbl.replace tally key (count + 1, example, classes)
      end)
    runs;
  let rows =
    Hashtbl.fold (fun k (c, ex, cls) acc -> (k, c, ex, cls) :: acc) tally []
    |> List.sort (fun (ka, ca, _, _) (kb, cb, _, _) ->
           match compare cb ca with 0 -> compare ka kb | o -> o)
    |> List.map (fun (k, c, ex, cls) ->
           [
             k; string_of_int c; ex;
             (if cls = [] then "-" else String.concat ", " cls);
           ])
  in
  Table.make
    ~title:
      "Disagreement patterns (verdicts in tec/lint/symcheck/oracle order)"
    ~header:[ "Pattern"; "Scenarios"; "Example"; "Oracle failure classes" ]
    (if rows = [] then [ [ "-"; "0"; "-"; "-" ] ] else rows)

let render_report runs =
  let buf = Buffer.create 4096 in
  let disagreements = List.length (List.filter disagrees runs) in
  let unsound =
    List.filter (fun r -> r.r_unsound <> []) runs
  in
  Buffer.add_string buf
    (Printf.sprintf
       "agree: %d scenarios, %d disagreements, %d unsound acceptances\n\n"
       (List.length runs) disagreements (List.length unsound));
  Buffer.add_string buf (Table.render (score_table runs));
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Table.render (pairwise_table runs));
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Table.render (disagreement_table runs));
  if unsound <> [] then begin
    Buffer.add_string buf "\nUnsound acceptances (predictor ready, oracle failed in its territory):\n";
    List.iter
      (fun r ->
        Buffer.add_string buf
          (Printf.sprintf "  %s: %s; oracle: %s\n"
             (Scengen.id r.r_scenario)
             (String.concat ", "
                (List.map Verdict.predictor_name r.r_unsound))
             (match r.r_failure with
             | Some f -> Verdict.failure_class f
             | None -> "-")))
      unsound;
    Buffer.add_string buf
      "  (each perturbation set minimized; see the promoted reproducers)\n"
  end;
  Buffer.contents buf

let record_report runs =
  if Feam_flightrec.Recorder.enabled () then
    Feam_flightrec.Recorder.payload ~kind:"agree.report"
      (Json.Str (render_report runs))
