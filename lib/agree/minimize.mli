(** Disagreement minimization: shrink an unsound scenario — a predictor
    strictly ready while the oracle failed inside its claimed territory —
    to a minimal reproducer by iteratively undoing perturbations.  The
    result is 1-minimal: removing any single remaining perturbation
    makes the unsoundness disappear. *)

(** A minimal reproducer, rebuildable from (seed, index, keep) alone. *)
type reproducer = {
  rp_seed : int;
  rp_index : int;
  rp_keep : int list;  (** indices into the scenario's drawn list *)
  rp_predictor : Verdict.predictor;  (** who was unsound *)
  rp_failure : string;  (** oracle failure class it missed *)
  rp_perturbations : string list;  (** kept perturbations, for humans *)
}

(** Shrink the run's unsound disagreement for [predictor] (must be in
    [r_unsound]).  Each probe rebuilds the scenario with a candidate
    keep-set and reruns all four predictors; the draw-always discipline
    in {!Feam_evalharness.Scengen} guarantees undoing one perturbation
    never changes another.  Returns the number of probe runs too. *)
val shrink :
  Harness.run -> Verdict.predictor -> (reproducer * int, string) result

(** Minimize every unsound (run, predictor) pair of a corpus. *)
val shrink_all : Harness.run list -> reproducer list

(** Stable text serialization, suitable for checking into
    [test/fixtures/]:

    {v
    feam agree reproducer v1
    seed 42
    index 17
    keep 0 2
    predictor tec
    failure unsatisfied-versions
    perturbation foreign-lib libfftw3.so.3
    v} *)
val to_string : reproducer -> string

val of_string : string -> (reproducer, string) result

(** Deterministic fixture filename:
    [agree_<predictor>_<failure>_<perturbation-signature>.agree]. *)
val filename : reproducer -> string

(** Rebuild the reproducer's scenario, rerun the harness, and check the
    recorded unsoundness still holds.  [Ok run] when it reproduces. *)
val check : reproducer -> (Harness.run, string) result
