(** The common verdict lattice the agreement harness normalizes every
    predictor into: ready / degraded / not-ready, with per-determinant
    attribution.

    Two acceptance notions matter.  For scoring against the oracle a
    predictor {e accepts} when it is not outright not-ready (degraded
    still lets the migration proceed).  For soundness a predictor is
    only on the hook when it is {e strictly ready}: it vouched for the
    scenario with no reservation, and the oracle then failed inside the
    predictor's claimed territory. *)

type level = Ready | Degraded | Not_ready

val level_to_string : level -> string
val level_of_string : string -> level option

(** One reason a verdict is below [Ready]: the determinant or rule that
    fired, and a short detail. *)
type attribution = { at_source : string; at_detail : string }

type t = { v_level : level; v_attribution : attribution list }

val ready : t

(** Not outright rejected (ready or degraded). *)
val accepts : t -> bool

(** Ready with no reservation — the soundness hook. *)
val strictly_ready : t -> bool

(** The four verdict sources under comparison. *)
type predictor = Tec | Lint | Symcheck | Oracle

val predictors : predictor list
val predictor_name : predictor -> string
val predictor_of_name : string -> predictor option

(** Library-level TEC determinants -> lattice. *)
val of_predict : Feam_core.Predict.t -> t

(** Lint findings -> lattice: errors reject, warnings degrade. *)
val of_findings : Feam_core.Diagnose.finding list -> t

(** Symbol-closure result -> lattice: definitive strong misses reject;
    weak misses, interposition or an incomplete scope degrade. *)
val of_symcheck : Feam_symcheck.Symcheck.t -> t

(** Ground-truth outcome -> lattice (never [Degraded]). *)
val of_outcome : Feam_dynlinker.Exec.outcome -> t

(** Stable kebab-case class of an oracle failure ("missing-libraries",
    "unsatisfied-versions", ...). *)
val failure_class : Feam_dynlinker.Exec.failure -> string

(** Does the predictor claim to detect this failure class?  A strictly
    ready verdict against an oracle failure outside the predictor's
    claims is out-of-scope, not unsound. *)
val claims : predictor -> Feam_dynlinker.Exec.failure -> bool
