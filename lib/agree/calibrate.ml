(* Per-rule severity calibration against the oracle (ROADMAP item 5
   follow-on).  The agreement corpus gives every lint finding a ground
   truth: did the scenario actually fail to launch?  A rule whose
   warn-or-worse findings never coincide with an oracle failure is, on
   this corpus, pure noise at its severity — the calibration demotes it
   to info rather than letting it gate anything. *)

open Feam_core

let warn_or_worse (f : Diagnose.finding) =
  Diagnose.level_rank f.Diagnose.level <= Diagnose.level_rank Diagnose.Warn

type row = {
  cal_rule : string;
  cal_level : Diagnose.level;
  cal_fired : int;
  cal_warned : int;
  cal_cofail : int;
  cal_demote : bool;
}

let row_of_rule runs (rule : Feam_analysis.Rule.t) =
  let of_rule (f : Diagnose.finding) = f.Diagnose.rule_id = rule.Feam_analysis.Rule.id in
  let fired, warned, cofail =
    List.fold_left
      (fun (fired, warned, cofail) (r : Harness.run) ->
        let mine = List.filter of_rule r.Harness.r_findings in
        let warns = List.exists warn_or_worse mine in
        let fails = not (Verdict.accepts r.Harness.r_oracle) in
        ( (if mine <> [] then fired + 1 else fired),
          (if warns then warned + 1 else warned),
          if warns && fails then cofail + 1 else cofail ))
      (0, 0, 0) runs
  in
  {
    cal_rule = rule.Feam_analysis.Rule.id;
    cal_level = rule.Feam_analysis.Rule.default_level;
    cal_fired = fired;
    cal_warned = warned;
    cal_cofail = cofail;
    cal_demote = warned > 0 && cofail = 0;
  }

let rows runs =
  List.map (row_of_rule runs) (Feam_analysis.Registry.cell_rules ())

let demotions runs =
  rows runs
  |> List.filter (fun r -> r.cal_demote)
  |> List.map (fun r -> r.cal_rule)

let verdict_of_row r =
  if r.cal_demote then "demote to info"
  else if r.cal_warned = 0 then "-"
  else "keep"

let precision_of_row r =
  if r.cal_warned = 0 then "-"
  else Feam_util.Table.percent r.cal_cofail r.cal_warned

let cells runs =
  rows runs
  |> List.map (fun r ->
         [
           r.cal_rule;
           Diagnose.level_to_string r.cal_level;
           string_of_int r.cal_fired;
           string_of_int r.cal_warned;
           string_of_int r.cal_cofail;
           precision_of_row r;
           verdict_of_row r;
         ])

let header = [ "Rule"; "Level"; "Fired"; "Warn+"; "Co-fail"; "Precision"; "Verdict" ]

let table runs =
  Feam_util.Table.make
    ~title:
      "Rule severity calibration against the oracle (precision = co-fail \
       / warn+)"
    ~header (cells runs)

let markdown_table runs =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("| " ^ String.concat " | " header ^ " |\n");
  Buffer.add_string buf "|---|---|---|---|---|---|---|\n";
  List.iter
    (fun cells ->
      match cells with
      | rule :: rest ->
        Buffer.add_string buf
          (Printf.sprintf "| `%s` | %s |\n" rule (String.concat " | " rest))
      | [] -> ())
    (cells runs);
  Buffer.contents buf

let cap_info (f : Diagnose.finding) =
  if Diagnose.level_rank f.Diagnose.level < Diagnose.level_rank Diagnose.Info
  then { f with Diagnose.level = Diagnose.Info }
  else f

let calibrated_rules runs =
  let demoted = demotions runs in
  Feam_analysis.Registry.cell_rules ()
  |> List.map (fun (rule : Feam_analysis.Rule.t) ->
         if not (List.mem rule.Feam_analysis.Rule.id demoted) then rule
         else
           match rule.Feam_analysis.Rule.check with
           | Feam_analysis.Rule.Cell check ->
             {
               rule with
               Feam_analysis.Rule.default_level = Diagnose.Info;
               check =
                 Feam_analysis.Rule.Cell
                   (fun ctx -> List.map cap_info (check ctx));
             }
           | Feam_analysis.Rule.Fleet _ -> rule)
