(** The differential agreement harness: runs all four predictors —
    library-level TEC determinants, the lint rule set, symcheck's ld.so
    binding simulation, and the dynamic-linker ground-truth oracle —
    over generated scenarios through one shared BDC/EDC description
    pass, normalizes their verdicts into the {!Verdict} lattice, and
    scores every predictor against the oracle. *)

(** One scenario's four verdicts. *)
type run = {
  r_scenario : Feam_evalharness.Scengen.t;
  r_tec : Verdict.t;
  r_lint : Verdict.t;
  r_sym : Verdict.t;
  r_oracle : Verdict.t;
  r_failure : Feam_dynlinker.Exec.failure option;
      (** the oracle's failure, when it failed *)
  r_unsound : Verdict.predictor list;
      (** predictors strictly ready although the oracle failed inside
          their claimed territory *)
  r_findings : Feam_core.Diagnose.finding list;
      (** the lint findings behind [r_lint], kept for per-rule severity
          calibration *)
}

val verdict_of : run -> Verdict.predictor -> Verdict.t

(** Any two of the four disagree on acceptance. *)
val disagrees : run -> bool

(** Run the four predictors over one built scenario.  When the flight
    recorder is enabled, journals the scenario payload and the four
    verdict decisions. *)
val run_one : Feam_evalharness.Scengen.t -> run

(** Build and run scenarios [0 .. count-1] of [seed].  Counts surface
    as [agree.scenarios] / [agree.disagreements] / [agree.unsound]. *)
val run_corpus : seed:int -> count:int -> unit -> run list

(** Rebuild and rerun one scenario identified by (seed, index, keep). *)
val rerun : seed:int -> index:int -> keep:int list -> run

(** Precision/recall/accuracy of each predictor against the oracle,
    plus its overturn rate of TEC acceptances and its unsound count. *)
val score_table : run list -> Feam_util.Table.t

(** Pairwise acceptance-agreement matrix over the four sources. *)
val pairwise_table : run list -> Feam_util.Table.t

(** Verdict-pattern breakdown of the scenarios where sources disagree. *)
val disagreement_table : run list -> Feam_util.Table.t

(** The full rendered report: summary line, the three tables, and the
    unsound-scenario list.  Byte-identical across runs for equal
    corpora — the determinism contract journals and CI rely on. *)
val render_report : run list -> string

(** Journal the corpus report payload (after the per-run records
    {!run_one} emitted); a no-op when the recorder is disabled. *)
val record_report : run list -> unit
