(* Greedy delta-debugging over the perturbation keep-set.  Because every
   scenario parameter is drawn from its own keyed PRNG stream whether or
   not the perturbation is kept, dropping index i changes nothing except
   perturbation i itself — so a simple one-at-a-time descent converges
   to a 1-minimal keep-set without ddmin's partition bookkeeping. *)

type reproducer = {
  rp_seed : int;
  rp_index : int;
  rp_keep : int list;
  rp_predictor : Verdict.predictor;
  rp_failure : string;
  rp_perturbations : string list;
}

let unsound_as run predictor failure =
  List.mem predictor run.Harness.r_unsound
  &&
  match run.Harness.r_failure with
  | Some f -> Verdict.failure_class f = failure
  | None -> false

let shrink (run : Harness.run) predictor =
  let sc = run.Harness.r_scenario in
  let open Feam_evalharness in
  if not (List.mem predictor run.Harness.r_unsound) then
    Error
      (Printf.sprintf "scenario %s is not unsound for %s" (Scengen.id sc)
         (Verdict.predictor_name predictor))
  else
    let failure =
      match run.Harness.r_failure with
      | Some f -> Verdict.failure_class f
      | None -> assert false
    in
    let probes = ref 0 in
    let holds keep =
      incr probes;
      let r =
        Harness.rerun ~seed:sc.Scengen.sc_seed ~index:sc.Scengen.sc_index ~keep
      in
      unsound_as r predictor failure
    in
    (* One pass: try dropping each kept index in turn, adopting any drop
       that preserves the unsoundness.  Repeat until no drop sticks. *)
    let rec fixpoint keep =
      let shrunk =
        List.fold_left
          (fun keep i ->
            let candidate = List.filter (fun j -> j <> i) keep in
            if candidate <> [] && holds candidate then candidate else keep)
          keep keep
      in
      if List.length shrunk < List.length keep then fixpoint shrunk else keep
    in
    let keep = fixpoint sc.Scengen.sc_keep in
    let final =
      Harness.rerun ~seed:sc.Scengen.sc_seed ~index:sc.Scengen.sc_index ~keep
    in
    Ok
      ( {
          rp_seed = sc.Scengen.sc_seed;
          rp_index = sc.Scengen.sc_index;
          rp_keep = keep;
          rp_predictor = predictor;
          rp_failure = failure;
          rp_perturbations =
            List.map Scengen.perturbation_to_string
              (Scengen.applied final.Harness.r_scenario);
        },
        !probes )

let shrink_all runs =
  List.concat_map
    (fun r ->
      List.filter_map
        (fun p ->
          match shrink r p with Ok (rp, _) -> Some rp | Error _ -> None)
        r.Harness.r_unsound)
    runs

let to_string rp =
  String.concat "\n"
    ([
       "feam agree reproducer v1";
       Printf.sprintf "seed %d" rp.rp_seed;
       Printf.sprintf "index %d" rp.rp_index;
       "keep " ^ String.concat " " (List.map string_of_int rp.rp_keep);
       "predictor " ^ Verdict.predictor_name rp.rp_predictor;
       "failure " ^ rp.rp_failure;
     ]
    @ List.map (fun p -> "perturbation " ^ p) rp.rp_perturbations)
  ^ "\n"

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | "feam agree reproducer v1" :: rest ->
    let field name =
      List.find_map
        (fun l ->
          let prefix = name ^ " " in
          let n = String.length prefix in
          if String.length l >= n && String.sub l 0 n = prefix then
            Some (String.sub l n (String.length l - n))
          else if l = name then Some ""
          else None)
        rest
    in
    let ( let* ) r f = Result.bind r f in
    let require name =
      match field name with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "reproducer: missing %S line" name)
    in
    let int_field name =
      let* v = require name in
      match int_of_string_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "reproducer: bad %s %S" name v)
    in
    let* rp_seed = int_field "seed" in
    let* rp_index = int_field "index" in
    let* keep_str = require "keep" in
    let* rp_keep =
      keep_str |> String.split_on_char ' '
      |> List.filter (fun t -> t <> "")
      |> List.fold_left
           (fun acc t ->
             let* acc = acc in
             match int_of_string_opt t with
             | Some i -> Ok (acc @ [ i ])
             | None -> Error (Printf.sprintf "reproducer: bad keep index %S" t))
           (Ok [])
    in
    let* pred_str = require "predictor" in
    let* rp_predictor =
      match Verdict.predictor_of_name pred_str with
      | Some p -> Ok p
      | None -> Error (Printf.sprintf "reproducer: unknown predictor %S" pred_str)
    in
    let* rp_failure = require "failure" in
    let rp_perturbations =
      List.filter_map
        (fun l ->
          let prefix = "perturbation " in
          let n = String.length prefix in
          if String.length l > n && String.sub l 0 n = prefix then
            Some (String.sub l n (String.length l - n))
          else None)
        rest
    in
    Ok { rp_seed; rp_index; rp_keep; rp_predictor; rp_failure; rp_perturbations }
  | _ -> Error "reproducer: missing \"feam agree reproducer v1\" header"

let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | '0' .. '9' | '-' -> c
      | '.' -> '-'
      | _ -> '_')
    (String.lowercase_ascii s)

let filename rp =
  let sig_ =
    match rp.rp_perturbations with
    | [] -> "none"
    | ps -> String.concat "+" (List.map sanitize ps)
  in
  Printf.sprintf "agree_%s_%s_%s.agree"
    (Verdict.predictor_name rp.rp_predictor)
    (sanitize rp.rp_failure) sig_

let check rp =
  let r = Harness.rerun ~seed:rp.rp_seed ~index:rp.rp_index ~keep:rp.rp_keep in
  if unsound_as r rp.rp_predictor rp.rp_failure then Ok r
  else
    Error
      (Printf.sprintf
         "reproducer %d/%d no longer reproduces: %s expected unsound for %s"
         rp.rp_seed rp.rp_index
         (Verdict.predictor_name rp.rp_predictor)
         rp.rp_failure)
