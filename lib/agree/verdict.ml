(* The verdict lattice: every predictor's native output folded into
   ready / degraded / not-ready with attribution, so agreement, overturn
   and soundness are all computed over one representation. *)

type level = Ready | Degraded | Not_ready

let level_to_string = function
  | Ready -> "ready"
  | Degraded -> "degraded"
  | Not_ready -> "not-ready"

let level_of_string = function
  | "ready" -> Some Ready
  | "degraded" -> Some Degraded
  | "not-ready" -> Some Not_ready
  | _ -> None

type attribution = { at_source : string; at_detail : string }

type t = { v_level : level; v_attribution : attribution list }

let ready = { v_level = Ready; v_attribution = [] }

let accepts t = t.v_level <> Not_ready
let strictly_ready t = t.v_level = Ready

type predictor = Tec | Lint | Symcheck | Oracle

let predictors = [ Tec; Lint; Symcheck; Oracle ]

let predictor_name = function
  | Tec -> "tec"
  | Lint -> "lint"
  | Symcheck -> "symcheck"
  | Oracle -> "oracle"

let predictor_of_name = function
  | "tec" -> Some Tec
  | "lint" -> Some Lint
  | "symcheck" -> Some Symcheck
  | "oracle" -> Some Oracle
  | _ -> None

let att at_source at_detail = { at_source; at_detail }

let of_predict (p : Feam_core.Predict.t) =
  let open Feam_core.Predict in
  match p.verdict with
  | Ready _ -> ready
  | Not_ready reasons ->
    let d = p.determinants in
    let failing =
      List.concat
        [
          (if not d.isa.isa_compatible then [ "isa" ] else []);
          (match d.stack with
          | Some s when not s.stack_compatible -> [ "stack" ]
          | _ -> []);
          (if not d.clib.clib_compatible then [ "clib" ] else []);
          (match d.libs with
          | Some l when not l.libs_compatible -> [ "libs" ]
          | _ -> []);
        ]
    in
    let attribution =
      match failing with
      | [] -> List.map (att "predict") reasons
      | sources ->
        List.map
          (fun s -> att s (String.concat "; " reasons))
          sources
    in
    { v_level = Not_ready; v_attribution = attribution }

let of_findings findings =
  let open Feam_core.Diagnose in
  let worst =
    List.fold_left
      (fun acc f ->
        match (acc, f.level) with
        | Some Error, _ | _, Error -> Some Error
        | Some Warn, _ | _, Warn -> Some Warn
        | _ -> Some Info)
      None findings
  in
  match worst with
  | None | Some Info -> ready
  | Some level ->
    let at = if level = Error then Error else Warn in
    {
      v_level = (if level = Error then Not_ready else Degraded);
      v_attribution =
        List.filter_map
          (fun f ->
            if f.level = at then Some (att f.rule_id f.subject) else None)
          findings;
    }

let of_symcheck (r : Feam_symcheck.Symcheck.t) =
  let module S = Feam_symcheck.Symcheck in
  match S.overturns r with
  | _ :: _ as misses ->
    {
      v_level = Not_ready;
      v_attribution =
        List.map (fun m -> att "symbol-unresolved" (S.miss_to_string m)) misses;
    }
  | [] ->
    let degraded =
      List.concat
        [
          List.map
            (fun m -> att "weak-unresolved" (S.miss_to_string m))
            r.S.unresolved_weak;
          List.map
            (fun i -> att "interposition" (S.interposition_to_string i))
            r.S.interpositions;
          (if r.S.complete then [] else [ att "scope" "incomplete scope" ]);
        ]
    in
    if degraded = [] then ready
    else { v_level = Degraded; v_attribution = degraded }

let failure_class (f : Feam_dynlinker.Exec.failure) =
  let open Feam_dynlinker.Exec in
  match f with
  | Not_executable _ -> "not-executable"
  | Wrong_isa _ -> "wrong-isa"
  | Missing_libraries _ -> "missing-libraries"
  | Arch_mismatched_libraries _ -> "arch-mismatched-libraries"
  | Unsatisfied_versions _ -> "unsatisfied-versions"
  | Interpreter_missing _ -> "interpreter-missing"
  | Invalid_process_count _ -> "invalid-process-count"
  | No_mpi_stack -> "no-mpi-stack"
  | Stack_misconfigured _ -> "stack-misconfigured"
  | Abi_incompatibility _ -> "abi-incompatibility"
  | Floating_point_error _ -> "floating-point-error"
  | Interconnect_unavailable _ -> "interconnect-unavailable"
  | System_error _ -> "system-error"

let of_outcome (o : Feam_dynlinker.Exec.outcome) =
  match o with
  | Feam_dynlinker.Exec.Success -> ready
  | Feam_dynlinker.Exec.Failure f ->
    {
      v_level = Not_ready;
      v_attribution =
        [ att (failure_class f) (Feam_dynlinker.Exec.failure_to_string f) ];
    }

(* What each predictor vouches for.  The TEC's library-level
   determinants cover the paper's four checks plus the version bindings
   resolution is supposed to guarantee; lint's target-aware rules cover
   ISA closure and glibc bindings; symcheck covers exactly the symbol
   version-binding channel.  Launch-time classes (process counts,
   interconnects, numerics) and loader conventions nobody inspects are
   out of scope for all three. *)
let claims p (f : Feam_dynlinker.Exec.failure) =
  let open Feam_dynlinker.Exec in
  match (p, f) with
  | ( Tec,
      ( Wrong_isa _ | Missing_libraries _ | Arch_mismatched_libraries _
      | Unsatisfied_versions _ | No_mpi_stack | Stack_misconfigured _
      | Not_executable _ ) ) ->
    true
  | Lint, (Wrong_isa _ | Unsatisfied_versions _ | Not_executable _) -> true
  | Symcheck, Unsatisfied_versions _ -> true
  | (Tec | Lint | Symcheck | Oracle), _ -> false
