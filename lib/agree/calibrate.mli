(** Severity calibration of the cell-rule set against the agreement
    corpus's dynamic-linker oracle.  For each lint rule: on how many
    scenarios it fired, how often its warn-or-worse findings co-occur
    with an oracle failure (its precision as a failure signal), and
    whether its default severity should be demoted — a rule whose
    warnings never co-occur with a failure over the corpus is noise at
    warn level and is demoted to info. *)

type row = {
  cal_rule : string;
  cal_level : Feam_core.Diagnose.level;  (** the rule's default level *)
  cal_fired : int;  (** scenarios with >= 1 finding from the rule *)
  cal_warned : int;  (** scenarios with >= 1 warn-or-worse finding *)
  cal_cofail : int;  (** warned scenarios where the oracle also failed *)
  cal_demote : bool;
      (** warned on some scenario, never alongside an oracle failure *)
}

(** One row per registered cell rule, in registry (id) order. *)
val rows : Harness.run list -> row list

(** Ids of the rules {!rows} demotes, sorted. *)
val demotions : Harness.run list -> string list

(** The calibration table evaltool prints. *)
val table : Harness.run list -> Feam_util.Table.t

(** The same table as GitHub-flavored markdown — the README carries it
    verbatim for the corpus named in the header, drift-tested like the
    rule table. *)
val markdown_table : Harness.run list -> string

(** The registered cell rules with every demoted rule's default level
    capped to info (its findings' levels are capped too).  The
    calibrated set plugs straight into {!Feam_analysis.Engine.run}'s
    [?rules]. *)
val calibrated_rules : Harness.run list -> Feam_analysis.Rule.t list
