(* An agreement journal is replayable from coordinates alone: every
   scenario is a pure function of (seed, index, keep), so the journal
   only records those plus the rendered report to diff against. *)

open Feam_util
module Journal = Feam_flightrec.Journal

type outcome = {
  runs : Harness.run list;
  rendered : string;
  recorded : string option;
  matches : bool;
}

let scenario_records journal =
  List.filter_map
    (fun r ->
      match Journal.field "data" r with
      | Some data
        when Journal.str_field "kind" r = Some "agree.scenario" ->
        Some data
      | _ -> None)
    (Journal.find_all ~kind:"payload" journal)

let has_corpus journal = scenario_records journal <> []

let coords data =
  let int name =
    match Option.bind (Json.member name data) Json.to_int_opt with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "agree.scenario payload: missing %s" name)
  in
  let ( let* ) r f = Result.bind r f in
  let* seed = int "seed" in
  let* index = int "index" in
  let* keep =
    match Option.bind (Json.member "keep" data) Json.to_list_opt with
    | None -> Error "agree.scenario payload: missing keep"
    | Some items ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          match Json.to_int_opt item with
          | Some i -> Ok (acc @ [ i ])
          | None -> Error "agree.scenario payload: non-integer keep index")
        (Ok []) items
  in
  Ok (seed, index, keep)

let of_journal journal =
  match scenario_records journal with
  | [] -> Error "journal has no agreement corpus (no agree.scenario payloads)"
  | payloads ->
    let ( let* ) r f = Result.bind r f in
    let* runs =
      List.fold_left
        (fun acc data ->
          let* acc = acc in
          let* seed, index, keep = coords data in
          Ok (acc @ [ Harness.rerun ~seed ~index ~keep ]))
        (Ok []) payloads
    in
    let rendered = Harness.render_report runs in
    let recorded =
      Option.bind
        (Journal.payload ~kind:"agree.report" journal)
        Json.to_string_opt
    in
    let matches = match recorded with Some r -> r = rendered | None -> false in
    Ok { runs; rendered; recorded; matches }
