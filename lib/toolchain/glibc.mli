(** GNU C library model: the historical sequence of glibc releases and
    the symbol-version sets each defines.

    The C-library determinant (paper §III.C) turns on two facts captured
    here: a binary records symbol-version {e needs} (GLIBC_x) for the
    features it actually uses, and a site's glibc defines every symbol
    version up to its own release — so compatibility is "target glibc >=
    the binary's required version". *)

(** Release history relevant to the paper's site era (2.0 .. 2.12). *)
val release_history : Feam_util.Version.t list

val symbol_prefix : string
val symbol_of_version : Feam_util.Version.t -> string

(** A representative symbol introduced at a release: what programs
    referencing that symbol version actually import, and what the C
    library of that release exports under it. *)
val representative_symbol : Feam_util.Version.t -> string

(** Parse "GLIBC_2.3.4"; [None] for non-GLIBC version names. *)
val version_of_symbol : string -> Feam_util.Version.t option

(** Word-size baseline: 64-bit ABIs never reference versions older than
    their port (x86-64 programs reference at least GLIBC_2.2.5). *)
val baseline : bits:[ `B32 | `B64 ] -> Feam_util.Version.t

(** Symbol versions a glibc release defines: every release up to it. *)
val defined_symbol_versions : Feam_util.Version.t -> string list

(** Does a glibc release satisfy one required symbol-version string? *)
val provides : glibc:Feam_util.Version.t -> string -> bool

(** Greatest release <= [cap]. *)
val newest_release_at_most : Feam_util.Version.t -> Feam_util.Version.t option

(** The symbol versions a program references, given the newest glibc
    feature level its code uses ([appetite]) and the glibc it was built
    against ([build]). *)
val referenced_versions :
  bits:[ `B32 | `B64 ] ->
  appetite:Feam_util.Version.t ->
  build:Feam_util.Version.t ->
  string list

(** The binary's {e required C library version}: the newest version among
    its references (paper §III.C). *)
val required_version : string list -> Feam_util.Version.t option

val libc_soname : Feam_util.Soname.t
val libm_soname : Feam_util.Soname.t
val libpthread_soname : Feam_util.Soname.t
val libdl_soname : Feam_util.Soname.t
val librt_soname : Feam_util.Soname.t
