(* GNU C library model: the historical sequence of glibc releases and the
   symbol-version sets each defines.

   The C-library determinant of the prediction model (paper §III.C) turns
   on two facts captured here: a binary records *symbol version needs*
   (GLIBC_x) for the features it actually uses, and a site's glibc
   defines every symbol version up to its own release.  Compatibility is
   therefore "target glibc >= binary's required version". *)

open Feam_util

(* Release history relevant to the paper's site era (Table II spans
   glibc 2.3.4 through 2.12).  Symbol versions appear in this order. *)
let release_history =
  List.map Version.of_string_exn
    [
      "2.0"; "2.1"; "2.1.1"; "2.1.2"; "2.1.3"; "2.2"; "2.2.1"; "2.2.2";
      "2.2.3"; "2.2.4"; "2.2.5"; "2.2.6"; "2.3"; "2.3.2"; "2.3.3"; "2.3.4";
      "2.4"; "2.5"; "2.6"; "2.7"; "2.8"; "2.9"; "2.10"; "2.11"; "2.11.1";
      "2.12";
    ]

let symbol_prefix = "GLIBC_"

let symbol_of_version v = symbol_prefix ^ Version.to_string v

(* A representative symbol introduced at each release: what a program
   referencing that symbol version actually imports, and what the C
   library of that release exports under it.  Well-known names for the
   releases the corpus exercises; a generic name for the rest. *)
let representative_symbol v =
  match Version.to_string v with
  | "2.0" -> "printf"
  | "2.1" -> "pread64"
  | "2.2" -> "posix_spawn"
  | "2.2.5" -> "__libc_start_main"
  | "2.3" -> "strtold"
  | "2.3.4" -> "__snprintf_chk"
  | "2.4" -> "__stack_chk_fail"
  | "2.5" -> "splice"
  | "2.6" -> "epoll_pwait"
  | "2.7" -> "__isoc99_sscanf"
  | "2.8" -> "timerfd_create"
  | "2.9" -> "pipe2"
  | "2.10" -> "accept4"
  | "2.11" -> "execvpe"
  | "2.12" -> "recvmmsg"
  | s -> "__glibc_feature_" ^ s

let version_of_symbol s =
  if String.starts_with ~prefix:symbol_prefix s then
    Version.of_string (String.sub s 6 (String.length s - 6))
  else None

(* The word-size baseline: 64-bit ABIs never predate the symbol version
   at which their port appeared (x86-64 programs always reference at
   least GLIBC_2.2.5). *)
let baseline ~bits =
  match bits with
  | `B64 -> Version.of_string_exn "2.2.5"
  | `B32 -> Version.of_string_exn "2.0"

(* Symbol versions defined by a glibc release: every historical release
   up to and including it. *)
let defined_symbol_versions glibc =
  release_history
  |> List.filter (fun v -> Version.(v <= glibc))
  |> List.map symbol_of_version

(* Does a glibc release satisfy one required symbol version string? *)
let provides ~glibc symbol =
  match version_of_symbol symbol with
  | None -> symbol = "GLIBC_PRIVATE" (* private versions only within one build *)
  | Some v -> Version.(v <= glibc)

(* Greatest release <= [cap]: the newest symbol set a program built on a
   [cap] system can reference. *)
let newest_release_at_most cap =
  let rec last acc = function
    | [] -> acc
    | v :: rest -> if Version.(v <= cap) then last (Some v) rest else acc
  in
  last None release_history

(* The symbol versions a program references, given the newest glibc
   feature level its code uses ([appetite]) and the glibc it was built
   against ([build]): baseline plus the newest release <= min appetite
   build. *)
let referenced_versions ~bits ~appetite ~build =
  let base = baseline ~bits in
  let cap = Version.min appetite build in
  let top =
    match newest_release_at_most cap with
    | Some v -> v
    | None -> base
  in
  let top = Version.max top base in
  if Version.equal top base then [ symbol_of_version base ]
  else [ symbol_of_version base; symbol_of_version top ]

(* The binary's *required C library version*: the newest version among
   its references (paper §III.C). *)
let required_version versions =
  versions
  |> List.filter_map version_of_symbol
  |> List.fold_left
       (fun acc v -> match acc with None -> Some v | Some a -> Some (Version.max a v))
       None

(* The soname of the C library and its major file name. *)
let libc_soname = Soname.make ~version:[ 6 ] "libc"
let libm_soname = Soname.make ~version:[ 6 ] "libm"
let libpthread_soname = Soname.make ~version:[ 0 ] "libpthread"
let libdl_soname = Soname.make ~version:[ 2 ] "libdl"
let librt_soname = Soname.make ~version:[ 1 ] "librt"
