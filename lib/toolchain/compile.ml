(* Compile simulator: what `mpicc`/`mpif90` under a given stack produce on
   a given site.  The output is a real ELF image whose dependency set,
   symbol-version references and .comment provenance strings follow from
   the stack, the compiler family and the site's glibc — the exact
   channels the prediction model later reads. *)

open Feam_util
open Feam_sysmodel
open Feam_mpi

(* A program source as the toolchain sees it. *)
type program = {
  prog_name : string;
  language : Stack.language;
  uses_mpi : bool;
  (* Newest glibc feature level the source uses: determines the binary's
     required C library version when built on a new-enough system. *)
  glibc_appetite : Version.t;
  extra_libs : Soname.t list; (* e.g. libz, libstdc++ for C++ codes *)
  binary_size_mb : float;
  (* Probability of an application-code defect on a foreign site (FP
     traps etc.); recorded in provenance for the ground-truth executor. *)
  runtime_fragility : float;
  is_probe : bool; (* hello-world scale: immune to load-induced system errors *)
  (* Valid MPI process counts: NPB's BT/SP require perfect squares, the
     kernels powers of two; launching with anything else aborts at
     startup. *)
  np_rule : [ `Any | `Power_of_two | `Square ];
}

let program ?(language = Stack.C) ?(uses_mpi = true)
    ?(glibc_appetite = Version.of_string_exn "2.2.5") ?(extra_libs = [])
    ?(binary_size_mb = 1.0) ?(runtime_fragility = 0.0) ?(is_probe = false)
    ?(np_rule = `Any) prog_name =
  {
    prog_name;
    language;
    uses_mpi;
    glibc_appetite;
    extra_libs;
    binary_size_mb;
    runtime_fragility;
    is_probe;
    np_rule;
  }

(* MPI "hello world" probe sources (paper §V.B: the EDC generates these
   for later stack testing).  Minimal appetite: they exercise only the
   MPI stack, never the C-library frontier. *)
let hello_world_mpi =
  program ~is_probe:true ~glibc_appetite:(Version.of_string_exn "2.0")
    ~binary_size_mb:0.02 "hello_mpi"

(* Fortran variant: generated when the application being described is a
   Fortran code, so that the probe exercises the Fortran MPI bindings
   and the Fortran compiler runtime — including any staged copies of
   them. *)
let hello_world_mpi_fortran =
  program ~is_probe:true ~language:Stack.Fortran
    ~glibc_appetite:(Version.of_string_exn "2.0")
    ~binary_size_mb:0.03 "hello_mpif"

let hello_world_serial =
  program ~is_probe:true ~uses_mpi:false
    ~glibc_appetite:(Version.of_string_exn "2.0")
    ~binary_size_mb:0.01 "hello_serial"

type error =
  | Wrapper_missing of string  (* stack has no such compiler wrapper *)
  | Compiler_unavailable       (* no native serial compiler *)
  | Source_incompatible of string (* source does not build with this stack *)
  | No_static_libraries        (* the MPI install ships no .a archives *)

let error_to_string = function
  | Wrapper_missing w -> Printf.sprintf "wrapper %s not found" w
  | Compiler_unavailable -> "no native compiler available"
  | Source_incompatible why -> "source incompatible: " ^ why
  | No_static_libraries ->
    "the MPI implementation was not installed with static libraries"

(* Toolchain provenance comments embedded in .comment: compiler banner
   decorated with the distro packaging tag, as real distro toolchains
   do — this is what lets the BDC report the build OS (paper §V.A). *)
let comments site compiler =
  let distro = Site.distro site in
  let compiler_comment =
    match Compiler.family compiler with
    | Compiler.Gnu ->
      Printf.sprintf "GCC: (GNU) %s (%s)"
        (Version.to_string (Compiler.version compiler))
        (Distro.name distro)
    | Compiler.Intel | Compiler.Pgi -> Compiler.comment_string compiler
  in
  [
    compiler_comment;
    Printf.sprintf "GNU ld version 2.17.50.0.6 (%s)" (Distro.name distro);
    Build_id.next ~site_name:(Site.name site);
  ]

let libc_name = Soname.to_string Glibc.libc_soname
let libm_name = Soname.to_string Glibc.libm_soname

let base_needed = [ libm_name; Soname.to_string Glibc.libpthread_soname; libc_name ]

let verneeds_for site program =
  let bits = Site.bits site in
  let build = Site.glibc site in
  let libc_versions =
    Glibc.referenced_versions ~bits ~appetite:program.glibc_appetite ~build
  in
  let libm_versions =
    Glibc.referenced_versions ~bits
      ~appetite:(Glibc.baseline ~bits)
      ~build
  in
  [
    { Feam_elf.Spec.vn_file = libc_name; vn_versions = libc_versions };
    { Feam_elf.Spec.vn_file = libm_name; vn_versions = libm_versions };
  ]

let build_image ?stack site ~needed ~compiler program =
  let bits = Site.bits site in
  let libc_versions =
    Glibc.referenced_versions ~bits ~appetite:program.glibc_appetite
      ~build:(Site.glibc site)
  in
  let dynsyms =
    Abi.binary_dynsyms ~bits ~glibc:(Site.glibc site) ~libc_versions ~needed
  in
  let spec =
    Feam_elf.Spec.make ~file_type:Feam_elf.Types.ET_EXEC ~needed
      ~verneeds:(verneeds_for site program) ~dynsyms
      ~comments:(comments site compiler)
      ~abi_note:(Distro.kernel_triple (Site.distro site))
      ~interp:(Feam_elf.Types.default_interp (Site.machine site))
      (Site.machine site)
  in
  let image = Feam_elf.Builder.build spec in
  Provenance.register image
    {
      Provenance.program_name = program.prog_name;
      build_site = Site.name site;
      build_glibc = Site.glibc site;
      stack;
      compiler;
      runtime_fragility = program.runtime_fragility;
      copy_abi_fragility = 0.0;
      is_probe = program.is_probe;
      np_rule = program.np_rule;
    };
  image

(* [compile_mpi ?clock site install program] — run the stack's compiler
   wrapper on [program] at [site]. *)
let compile_mpi ?clock site install program =
  let stack = Stack_install.stack install in
  let wrapper =
    match program.language with Stack.C -> "mpicc" | Stack.Fortran -> "mpif90"
  in
  let wrapper_path = Stack_install.bin_dir install ^ "/" ^ wrapper in
  if not (Vfs.exists (Site.vfs site) wrapper_path) then
    Error (Wrapper_missing wrapper)
  else begin
    Cost.charge clock Cost.compile_mpi;
    let needed =
      List.map Soname.to_string
        (Stack.needed_libs stack program.language @ program.extra_libs)
      @ base_needed
    in
    Ok (build_image ~stack site ~needed ~compiler:(Stack.compiler stack) program)
  end

(* [compile_serial ?clock site program] — native `cc` on the login node,
   used for probe programs.  Requires a native compiler. *)
let compile_serial ?clock site program =
  if not (Site.tools site).Tools.c_compiler then Error Compiler_unavailable
  else begin
    Cost.charge clock Cost.compile_serial;
    let compiler = Provision.distro_compiler site in
    let needed = List.map Soname.to_string program.extra_libs @ base_needed in
    Ok (build_image site ~needed ~compiler program)
  end

(* Statically linked build: every library is folded into the image, so
   the result has no dynamic dependencies at all — the most portable
   artifact a user can make, available only where the MPI implementation
   was installed with static libraries (paper SVI.C). *)
let compile_mpi_static ?clock site install program =
  if not (Stack_install.static_libs install) then Error No_static_libraries
  else begin
    Cost.charge clock (2.0 *. Cost.compile_mpi) (* static links are slower *);
    let stack = Stack_install.stack install in
    let spec =
      Feam_elf.Spec.make ~file_type:Feam_elf.Types.ET_EXEC
        ~comments:(comments site (Stack.compiler stack))
        ~abi_note:(Distro.kernel_triple (Site.distro site))
        (Site.machine site)
    in
    let image = Feam_elf.Builder.build spec in
    Provenance.register image
      {
        Provenance.program_name = program.prog_name;
        build_site = Site.name site;
        build_glibc = Site.glibc site;
        stack = Some stack;
        compiler = Stack.compiler stack;
        runtime_fragility = program.runtime_fragility;
        copy_abi_fragility = 0.0;
        is_probe = program.is_probe;
        np_rule = program.np_rule;
      };
    Ok image
  end

let declared_size program =
  int_of_float (program.binary_size_mb *. 1024.0 *. 1024.0)

(* Compile and install the binary into the site's filesystem (a user's
   home or scratch directory), returning its path. *)
let compile_mpi_to ?clock site install program ~dir =
  match compile_mpi ?clock site install program with
  | Error _ as e -> e
  | Ok image ->
    let path = dir ^ "/" ^ program.prog_name in
    Vfs.add ~declared_size:(declared_size program) (Site.vfs site) path
      (Vfs.Elf image);
    Ok path
