(* Deterministic API-symbol model of the simulated toolchain.

   Every library in the catalog exports a symbol set derived from its
   soname and the *vintage* of the build — a coarse era rank computed
   from the building site's glibc.  Newer builds of a library add
   feature symbols at the same soname major; a binary linked on a newer
   site imports the newest feature symbol its build exported.  This is
   the channel that makes the soname-major heuristic unsound in the
   simulated world: an older site can carry a library that satisfies the
   soname-major check yet lacks a symbol the arriving binary imports —
   exactly the gap the symcheck analysis is built to expose.

   glibc members (libc, libm, libpthread, ...) are modelled separately:
   their exports are well-known names carried at GLIBC_* symbol
   versions, so incompatibilities surface through version binding, in
   agreement with {!Resolve}'s library-level version check. *)

open Feam_util

(* Era rank of a build environment: the number of glibc releases up to
   the build glibc, in coarse steps.  Table II's sites fall into two
   vintages (glibc <= 2.5 -> 4, glibc >= 2.11 -> 6), which gives the
   corpus genuine cross-vintage migrations in both directions. *)
let vintage glibc =
  let rank =
    List.length (List.filter (fun v -> Version.(v <= glibc)) Glibc.release_history)
  in
  rank / 4

(* "libfftw.so.2" -> "fftw"; falls back to the raw name for strings that
   do not parse as sonames. *)
let prefix_of_name name =
  let base = match Soname.of_string name with Some s -> Soname.base s | None -> name in
  if String.length base > 3 && String.sub base 0 3 = "lib" then
    String.sub base 3 (String.length base - 3)
  else base

let core_suffixes = [ "_init"; "_run"; "_finalize" ]

let core_symbols name =
  let p = prefix_of_name name in
  List.map (fun s -> p ^ s) core_suffixes

let feature_symbol name r =
  Printf.sprintf "%s_feature_r%d" (prefix_of_name name) r

(* Exported names of a catalog library built against [glibc]: the stable
   core plus one feature symbol per vintage step. *)
let exported_symbols ~glibc name =
  let rec features r acc =
    if r < 1 then acc else features (r - 1) (feature_symbol name r :: acc)
  in
  core_symbols name @ features (vintage glibc) []

(* Names a binary linked against that library on a [glibc] system
   imports: the core plus the newest feature symbol of the build it
   linked against. *)
let imported_symbols ~glibc name =
  core_symbols name @ [ feature_symbol name (vintage glibc) ]

(* Well-known exports of the glibc member libraries, carried at the
   word-size baseline version (every glibc build defines it). *)
let glibc_member_symbols name =
  match prefix_of_name name with
  | "m" -> [ "sqrt"; "pow"; "log" ]
  | "pthread" -> [ "pthread_create"; "pthread_join"; "pthread_mutex_lock" ]
  | "dl" -> [ "dlopen"; "dlsym"; "dlclose" ]
  | "rt" -> [ "clock_gettime"; "shm_open" ]
  | "util" -> [ "openpty"; "forkpty" ]
  | "nsl" -> [ "yp_bind"; "yp_match" ]
  | p -> [ p ^ "_init" ]

let global name ~defined ~version =
  {
    Feam_elf.Spec.sym_name = name;
    sym_defined = defined;
    sym_binding = Feam_elf.Spec.Global;
    sym_version = version;
  }

(* .dynsym contents of a catalog library built on a [glibc] system.
   glibc members export their well-known names at the baseline GLIBC
   version; other libraries export the vintage-derived API set
   unversioned.  Either way the library imports libc's representative
   symbols at the versions its verneed references. *)
let library_dynsyms ~bits ~glibc ~part_of_glibc ~libc_versions name =
  let exports =
    if part_of_glibc then
      let base = Glibc.symbol_of_version (Glibc.baseline ~bits) in
      List.map
        (fun s -> global s ~defined:true ~version:(Some base))
        (glibc_member_symbols name)
    else
      List.map
        (fun s -> global s ~defined:true ~version:None)
        (exported_symbols ~glibc name)
  in
  let libc_imports =
    List.map
      (fun v ->
        global (Glibc.representative_symbol v) ~defined:false
          ~version:(Some (Glibc.symbol_of_version v)))
      (List.filter_map Glibc.version_of_symbol libc_versions)
  in
  exports @ libc_imports

(* .dynsym contents of the C library itself: one representative export
   per symbol version its release defines. *)
let libc_dynsyms ~glibc =
  Glibc.defined_symbol_versions glibc
  |> List.filter_map Glibc.version_of_symbol
  |> List.map (fun v ->
         global (Glibc.representative_symbol v) ~defined:true
           ~version:(Some (Glibc.symbol_of_version v)))

(* .dynsym contents of a compiled program: versioned imports of libc's
   representative symbols, the baseline libm/libpthread names, and the
   unversioned API set of every other library it links. *)
let binary_dynsyms ~bits ~glibc ~libc_versions ~needed =
  let libc_imports =
    List.map
      (fun v ->
        global (Glibc.representative_symbol v) ~defined:false
          ~version:(Some (Glibc.symbol_of_version v)))
      (List.filter_map Glibc.version_of_symbol libc_versions)
  in
  let base = Glibc.symbol_of_version (Glibc.baseline ~bits) in
  let lib_imports =
    needed
    |> List.concat_map (fun name ->
           match prefix_of_name name with
           | "c" | "ld-linux" -> []
           | "m" -> [ global "sqrt" ~defined:false ~version:(Some base) ]
           | "pthread" | "dl" | "rt" | "util" | "nsl" ->
             (* glibc members: reference their first well-known export
                unversioned, matching what the members define *)
             [
               global
                 (List.hd (glibc_member_symbols name))
                 ~defined:false ~version:None;
             ]
           | _ ->
             List.map
               (fun s -> global s ~defined:false ~version:None)
               (imported_symbols ~glibc name))
  in
  libc_imports @ lib_imports
