(* Provisioning: populates a site's virtual filesystem with the shared
   libraries, release files, tool configuration and MPI stack installs
   that its Table II characteristics imply.  Every installed library is a
   real ELF image built against the *site's* glibc — so copies taken from
   one site carry that site's C-library requirements with them, which is
   what makes half of the paper's resolution attempts fail. *)

open Feam_util
open Feam_sysmodel
open Feam_mpi


(* The ELF image of one catalog library as built/packaged on [site]. *)
let library_image site (entry : Libdb.entry) ~built_with : string =
  let bits = Site.bits site in
  let libc_name = Soname.to_string Glibc.libc_soname in
  let needed = List.map Soname.to_string entry.Libdb.deps @ [ libc_name ] in
  let libc_versions =
    Glibc.referenced_versions ~bits ~appetite:entry.Libdb.appetite
      ~build:(Site.glibc site)
  in
  let verneeds =
    [ { Feam_elf.Spec.vn_file = libc_name; vn_versions = libc_versions } ]
  in
  let verdefs =
    Soname.to_string entry.Libdb.soname
    ::
    (if entry.Libdb.part_of_glibc then
       Glibc.defined_symbol_versions (Site.glibc site)
     else [])
  in
  let dynsyms =
    Abi.library_dynsyms ~bits ~glibc:(Site.glibc site)
      ~part_of_glibc:entry.Libdb.part_of_glibc ~libc_versions
      (Soname.to_string entry.Libdb.soname)
  in
  let spec =
    Feam_elf.Spec.make ~file_type:Feam_elf.Types.ET_DYN
      ~soname:(Soname.to_string entry.Libdb.soname)
      ~needed ~verneeds ~verdefs ~dynsyms
      ~comments:
        [
          Compiler.comment_string built_with;
          Build_id.next ~site_name:(Site.name site);
        ]
      ~abi_note:(Distro.kernel_triple (Site.distro site))
      (Site.machine site)
  in
  let image = Feam_elf.Builder.build spec in
  Provenance.register image
    {
      Provenance.program_name = Soname.to_string entry.Libdb.soname;
      build_site = Site.name site;
      build_glibc = Site.glibc site;
      stack = None;
      compiler = built_with;
      runtime_fragility = 0.0;
      copy_abi_fragility = entry.Libdb.copy_abi_fragility;
      is_probe = false;
      np_rule = `Any;
    };
  image

(* The C library itself: defines every symbol version of its release. *)
let libc_image site : string =
  let verdefs =
    Soname.to_string Glibc.libc_soname
    :: Glibc.defined_symbol_versions (Site.glibc site)
    @ [ "GLIBC_PRIVATE" ]
  in
  let spec =
    Feam_elf.Spec.make ~file_type:Feam_elf.Types.ET_DYN
      ~soname:(Soname.to_string Glibc.libc_soname)
      ~verdefs
      ~dynsyms:(Abi.libc_dynsyms ~glibc:(Site.glibc site))
      ~comments:
        [ Printf.sprintf "GNU C Library stable release version %s"
            (Version.to_string (Site.glibc site)) ]
      ~abi_note:(Distro.kernel_triple (Site.distro site))
      (Site.machine site)
  in
  Feam_elf.Builder.build spec

(* Scientific-library generation of a site: enterprise Linux 4/5 ships
   the old FFTW 2 / early HDF5 sonames; newer distributions the new
   ones. *)
let scientific_generation site =
  if Version.major (Distro.version (Site.distro site)) <= 5 then
    Libdb.Old_generation
  else Libdb.New_generation

(* The soname a program linking scientific family [f] gets on [site]. *)
let scientific_soname site f =
  Libdb.scientific_soname f (scientific_generation site)

(* Default compiler used to build distro packages on the site. *)
let distro_compiler site =
  match Site.compiler_of_family site Compiler.Gnu with
  | Some c -> c
  | None -> Compiler.make Compiler.Gnu (Version.of_string_exn "4.1.2")

let install_library site ~dir ~built_with (entry : Libdb.entry) =
  let vfs = Site.vfs site in
  let image = library_image site entry ~built_with in
  let name = Soname.to_string entry.Libdb.soname in
  let path = dir ^ "/" ^ name in
  Vfs.add ~declared_size:(Libdb.size_bytes entry) vfs path (Vfs.Elf image);
  (* Development symlink, as ldconfig would maintain (only when the
     soname is versioned; an unversioned soname IS the link name). *)
  let link = Soname.link_name entry.Libdb.soname in
  if link <> name then Vfs.add vfs (dir ^ "/" ^ link) (Vfs.Symlink path)

(* -- Base system -------------------------------------------------------- *)

let provision_base site =
  let vfs = Site.vfs site in
  let gcc = distro_compiler site in
  let primary_dir = List.hd (Site.default_lib_dirs site) in
  let usr_dir =
    match Site.default_lib_dirs site with _ :: d :: _ -> d | _ -> primary_dir
  in
  (* The dynamic loader itself, at the machine's conventional path. *)
  let loader_path = Feam_elf.Types.default_interp (Site.machine site) in
  let loader_spec =
    Feam_elf.Spec.make ~file_type:Feam_elf.Types.ET_DYN
      ~soname:(Vfs.basename loader_path)
      ~comments:[ "GNU C Library dynamic loader" ]
      (Site.machine site)
  in
  Vfs.add
    ~declared_size:(int_of_float (0.15 *. 1024.0 *. 1024.0))
    vfs loader_path
    (Vfs.Elf (Feam_elf.Builder.build loader_spec));
  (* C library binary (runnable: prints its banner). *)
  Vfs.add
    ~declared_size:(int_of_float (1.7 *. 1024.0 *. 1024.0))
    vfs
    (primary_dir ^ "/" ^ Soname.to_string Glibc.libc_soname)
    (Vfs.Elf (libc_image site));
  List.iter (install_library site ~dir:primary_dir ~built_with:gcc) Libdb.base_system;
  install_library site ~dir:primary_dir ~built_with:gcc Libdb.libgcc_s;
  install_library site ~dir:usr_dir ~built_with:gcc Libdb.libstdcxx;
  List.iter
    (install_library site ~dir:usr_dir ~built_with:gcc)
    (Libdb.gnu_fortran_runtime (Compiler.version gcc));
  (* Enterprise-Linux 5.x shipped compatibility runtimes for binaries
     built by older GCC releases (compat-libf2c-34): libg2c.so.0 is
     present there even though the native compiler is gcc 4.x. *)
  (match Distro.flavor (Site.distro site) with
  | Distro.Rhel | Distro.Centos
    when Version.major (Distro.version (Site.distro site)) = 5 ->
    List.iter
      (install_library site ~dir:usr_dir ~built_with:gcc)
      (Libdb.gnu_fortran_runtime (Version.of_string_exn "3.4.6"))
  | Distro.Rhel | Distro.Centos | Distro.Sles -> ());
  (* Site-local scientific libraries, in the site's generation. *)
  List.iter
    (fun family ->
      install_library site ~dir:usr_dir ~built_with:gcc
        (Libdb.scientific_entry family (scientific_generation site)))
    Libdb.scientific_families;
  (* InfiniBand user space only where the fabric exists. *)
  if Interconnect.equal (Site.interconnect site) Interconnect.Infiniband then
    List.iter (install_library site ~dir:usr_dir ~built_with:gcc) Libdb.infiniband_libs;
  (* Release file and /proc/version are what the EDC reads. *)
  let release_path, release_body = Distro.release_file (Site.distro site) in
  Vfs.add vfs release_path (Vfs.Text release_body);
  Vfs.add vfs "/proc/version"
    (Vfs.Text (Distro.proc_version (Site.distro site) ~machine:(Site.machine site)))

(* -- Compiler suites ----------------------------------------------------- *)

let compiler_prefix compiler =
  Printf.sprintf "/opt/%s-%s"
    (Compiler.family_slug (Compiler.family compiler))
    (Version.to_string (Compiler.version compiler))

let provision_compiler site compiler =
  match Compiler.family compiler with
  | Compiler.Gnu -> () (* distro-packaged; installed by provision_base *)
  | Compiler.Intel | Compiler.Pgi ->
    let dir = compiler_prefix compiler ^ "/lib" in
    let runtime =
      match Compiler.family compiler with
      | Compiler.Intel -> Libdb.intel_runtime
      | Compiler.Pgi -> Libdb.pgi_runtime (Compiler.version compiler)
      | Compiler.Gnu -> []
    in
    List.iter (install_library site ~dir ~built_with:compiler) runtime;
    (* Administrators register vendor runtime directories with the
       dynamic linker cache. *)
    Site.add_ld_conf_dir site dir

(* -- MPI stacks ---------------------------------------------------------- *)

let wrapper_script install name =
  let stack = Stack_install.stack install in
  Printf.sprintf
    "#!/bin/sh\n# %s wrapper for %s\nexec %s/%s.real \"$@\"\n" name
    (Stack.to_string stack)
    (Stack_install.bin_dir install)
    name

let provision_stack site ?(health = Stack_install.Functioning)
    ?(registered = true) ?(static_libs = false) stack =
  let prefix = "/opt/" ^ Stack.slug stack in
  let install =
    Stack_install.make ~health ~registered ~static_libs ~prefix stack
  in
  let vfs = Site.vfs site in
  let lib_dir = Stack_install.lib_dir install in
  List.iter
    (install_library site ~dir:lib_dir ~built_with:(Stack.compiler stack))
    (Libdb.mpi_entries stack);
  List.iter
    (fun name ->
      Vfs.add vfs
        (Stack_install.bin_dir install ^ "/" ^ name)
        (Vfs.Script (wrapper_script install name)))
    Stack.wrapper_names;
  (* The launcher lives beside the wrappers. *)
  Vfs.add vfs
    (Stack_install.bin_dir install ^ "/" ^ Stack.default_launcher)
    (Vfs.Script "#!/bin/sh\n# mpiexec\n");
  Site.add_stack_install site install;
  install

(* -- Whole site ---------------------------------------------------------- *)

(* Provision base system, every native compiler suite, and the given MPI
   stacks; then materialize the user-environment tool's database. *)
let provision_site site ~stacks =
  provision_base site;
  List.iter (provision_compiler site) (Site.compilers site);
  let installs =
    List.map
      (fun (stack, health) -> provision_stack site ~health stack)
      stacks
  in
  Modules_tool.provision site;
  installs
