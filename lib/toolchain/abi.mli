(** Deterministic API-symbol model of the simulated toolchain: what
    every library exports and every compiled binary imports, as a
    function of the build environment's glibc {e vintage}.  Newer
    builds add feature symbols at the same soname major — the channel
    that makes the soname-major heuristic unsound in the simulated
    world, and the one {!Feam_symcheck} is built to expose. *)

(** Era rank of a build environment: coarse steps over the glibc
    release history (Table II's sites fall into vintages 4 and 6). *)
val vintage : Feam_util.Version.t -> int

(** Exported names of a catalog library built against [glibc]: the
    stable [_init]/[_run]/[_finalize] core plus one [_feature_r<N>]
    symbol per vintage step. *)
val exported_symbols : glibc:Feam_util.Version.t -> string -> string list

(** Names a binary linked against that library on a [glibc] system
    imports: the core plus the newest feature symbol its build saw. *)
val imported_symbols : glibc:Feam_util.Version.t -> string -> string list

(** Well-known exports of the glibc member libraries (libm, libpthread,
    ...), carried at the word-size baseline GLIBC version. *)
val glibc_member_symbols : string -> string list

(** [.dynsym] contents of a catalog library. *)
val library_dynsyms :
  bits:[ `B32 | `B64 ] ->
  glibc:Feam_util.Version.t ->
  part_of_glibc:bool ->
  libc_versions:string list ->
  string ->
  Feam_elf.Spec.dynsym list

(** [.dynsym] contents of the C library itself: one representative
    export per symbol version its release defines. *)
val libc_dynsyms : glibc:Feam_util.Version.t -> Feam_elf.Spec.dynsym list

(** [.dynsym] contents of a compiled program, over its DT_NEEDED list. *)
val binary_dynsyms :
  bits:[ `B32 | `B64 ] ->
  glibc:Feam_util.Version.t ->
  libc_versions:string list ->
  needed:string list ->
  Feam_elf.Spec.dynsym list
