(* A span: one timed, named step of the pipeline, with attributes and
   point-in-time events, forming a tree via parent ids.  Spans are
   mutable while open (the tracer fills duration/attrs/events) and are
   handed to the sink exactly once, at completion. *)

type value = Str of string | Int of int | Float of float | Bool of bool

type event = {
  ev_name : string;
  ev_at_ns : int64;
  ev_attrs : (string * value) list;
}

type t = {
  id : int;
  parent : int option;
  depth : int;
  name : string;
  start_ns : int64;
  mutable duration_ns : int64;
  mutable attrs : (string * value) list;
  mutable events : event list;
}

let value_to_json = function
  | Str s -> Feam_util.Json.Str s
  | Int i -> Feam_util.Json.Int i
  | Float f -> Feam_util.Json.Float f
  | Bool b -> Feam_util.Json.Bool b

let attrs_to_json attrs =
  Feam_util.Json.Obj (List.map (fun (k, v) -> (k, value_to_json v)) attrs)

let event_to_json e =
  let open Feam_util.Json in
  Obj
    [
      ("name", Str e.ev_name);
      ("at_ns", Int (Int64.to_int e.ev_at_ns));
      ("attrs", attrs_to_json e.ev_attrs);
    ]

(* One JSONL record per span: the schema the golden test pins down. *)
let to_json span =
  let open Feam_util.Json in
  Obj
    [
      ("type", Str "span");
      ("id", Int span.id);
      ("parent", (match span.parent with Some p -> Int p | None -> Null));
      ("depth", Int span.depth);
      ("name", Str span.name);
      ("start_ns", Int (Int64.to_int span.start_ns));
      ("dur_ns", Int (Int64.to_int span.duration_ns));
      ("attrs", attrs_to_json span.attrs);
      ("events", List (List.map event_to_json span.events));
    ]

(* "1.2ms"-style durations for the human-readable sink. *)
let duration_to_string ns =
  let ns = Int64.to_float ns in
  if ns < 1e3 then Printf.sprintf "%.0fns" ns
  else if ns < 1e6 then Printf.sprintf "%.1fus" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.1fms" (ns /. 1e6)
  else Printf.sprintf "%.2fs" (ns /. 1e9)
