(* Pluggable span consumers.  A sink receives every completed span
   (children complete before their parents) and renders its output at
   [flush]; flushing is idempotent — sinks clear what they have emitted
   so a second flush (e.g. the at_exit safety net behind an early
   [exit 1]) writes nothing twice. *)

type t = {
  on_span : Span.t -> unit;
  flush : unit -> unit;
}

let noop = { on_span = (fun _ -> ()); flush = (fun () -> ()) }

(* One JSON object per line, in completion order. *)
let jsonl ~emit () =
  let buf = Buffer.create 1024 in
  {
    on_span =
      (fun span ->
        Buffer.add_string buf (Feam_util.Json.render (Span.to_json span));
        Buffer.add_char buf '\n');
    flush =
      (fun () ->
        if Buffer.length buf > 0 then begin
          let text = Buffer.contents buf in
          Buffer.clear buf;
          emit text
        end);
  }

(* Spans in start order = ascending id (the tracer allocates ids when
   spans open). *)
let in_start_order spans =
  List.sort (fun (a : Span.t) (b : Span.t) -> compare a.Span.id b.Span.id) spans

(* Human-readable tree: indentation from span depth, one line per span. *)
let pretty ~emit () =
  let spans = ref [] in
  {
    on_span = (fun span -> spans := span :: !spans);
    flush =
      (fun () ->
        match !spans with
        | [] -> ()
        | collected ->
          spans := [];
          let ordered = in_start_order collected in
          let buf = Buffer.create 1024 in
          Printf.bprintf buf "trace: %d span(s)\n" (List.length ordered);
          List.iter
            (fun (s : Span.t) ->
              Printf.bprintf buf "  %*s%-28s %10s" (2 * s.Span.depth) ""
                s.Span.name
                (Span.duration_to_string s.Span.duration_ns);
              List.iter
                (fun (k, v) ->
                  let rendered =
                    match v with
                    | Span.Str x -> x
                    | Span.Int x -> string_of_int x
                    | Span.Float x -> Printf.sprintf "%g" x
                    | Span.Bool x -> string_of_bool x
                  in
                  Printf.bprintf buf "  %s=%s" k rendered)
                s.Span.attrs;
              Buffer.add_char buf '\n')
            ordered;
          emit (Buffer.contents buf));
  }

(* Chrome trace_event JSON: load the file at chrome://tracing or
   https://ui.perfetto.dev for a flame chart.  Complete ("X") events on
   a single thread; nesting is implied by time containment, so ties are
   broken parent-first (longer duration, then lower id). *)
let chrome ~emit () =
  let spans = ref [] in
  {
    on_span = (fun span -> spans := span :: !spans);
    flush =
      (fun () ->
        match !spans with
        | [] -> ()
        | collected ->
          spans := [];
          let ordered =
            List.sort
              (fun (a : Span.t) (b : Span.t) ->
                match compare a.Span.start_ns b.Span.start_ns with
                | 0 -> (
                  match compare b.Span.duration_ns a.Span.duration_ns with
                  | 0 -> compare a.Span.id b.Span.id
                  | c -> c)
                | c -> c)
              collected
          in
          let open Feam_util.Json in
          let event (s : Span.t) =
            Obj
              [
                ("name", Str s.Span.name);
                ("cat", Str "feam");
                ("ph", Str "X");
                ("ts", Float (Int64.to_float s.Span.start_ns /. 1e3));
                ("dur", Float (Int64.to_float s.Span.duration_ns /. 1e3));
                ("pid", Int 1);
                ("tid", Int 1);
                ("args", Span.attrs_to_json s.Span.attrs);
              ]
          in
          emit
            (render
               (Obj
                  [
                    ("traceEvents", List (List.map event ordered));
                    ("displayTimeUnit", Str "ms");
                  ])));
  }
