(* The cost ledger: per-stage × per-determinant × per-cell cost
   attribution over the migration matrix.

   Spans tell you what one run did; the ledger answers the capacity
   question behind ROADMAP items 1–2 — where do the ~1.5 ms/op of
   both_phases actually go, per matrix cell and per determinant?  The
   evaluation harness installs a ledger, brackets each matrix cell with
   [with_cell], and the pipeline's stages/determinant checks charge
   their cost into the ambient ledger.

   Cost is two-dimensional: wall nanoseconds through the ledger's
   injectable clock, and allocated words from the Gc counters.  The
   words column is the deterministic one — identical runs allocate
   identically — so `evaltool --costs` defaults to a fixed (zero)
   clock and byte-stable output; pass a wall clock for a live profile.

   Accounting is *self-cost*: a frame stack subtracts each child
   measurement from its parent, so nested stages (describe inside a
   source phase, determinant checks inside tec.evaluate) never double
   count.  Totals are kept alongside for "inclusive" views.

   When no ledger is installed every entry point is a single ref read —
   the instrumentation stays free for ordinary predictions. *)

type kind = Stage | Determinant

type bucket = {
  mutable calls : int;
  mutable self_ns : int64;
  mutable self_words : float;
  mutable total_ns : int64;
  mutable total_words : float;
}

type frame = { mutable child_ns : int64; mutable child_words : float }

type t = {
  clock : Clock.t;
  entries : (string * kind * string, bucket) Hashtbl.t;
  (* ^ keyed (cell, kind, name); cell "" = outside any cell *)
  mutable cell : string;
  mutable frames : frame list; (* innermost measurement first *)
}

let create ?(clock = Clock.fixed ()) () =
  { clock; entries = Hashtbl.create 256; cell = ""; frames = [] }

(* The ambient ledger.  Installation is explicit and scoped by the
   harness; nothing else in the pipeline ever installs one. *)
let current : t option ref = ref None

let install t = current := Some t

let uninstall () = current := None

let bucket t key =
  match Hashtbl.find_opt t.entries key with
  | Some b -> b
  | None ->
    let b =
      { calls = 0; self_ns = 0L; self_words = 0.0;
        total_ns = 0L; total_words = 0.0 }
    in
    Hashtbl.add t.entries key b;
    b

let measure t kind name f =
  let fr = { child_ns = 0L; child_words = 0.0 } in
  t.frames <- fr :: t.frames;
  let t0 = t.clock () in
  let w0 = Prof.allocated_words () in
  Fun.protect f ~finally:(fun () ->
      let total_ns = Int64.sub (t.clock ()) t0 in
      let total_words = Prof.allocated_words () -. w0 in
      (match t.frames with
      | top :: rest when top == fr -> t.frames <- rest
      | _ -> ());
      (match t.frames with
      | parent :: _ ->
        parent.child_ns <- Int64.add parent.child_ns total_ns;
        parent.child_words <- parent.child_words +. total_words
      | [] -> ());
      let b = bucket t (t.cell, kind, name) in
      b.calls <- b.calls + 1;
      b.total_ns <- Int64.add b.total_ns total_ns;
      b.total_words <- b.total_words +. total_words;
      b.self_ns <- Int64.add b.self_ns (Int64.sub total_ns fr.child_ns);
      b.self_words <- b.self_words +. (total_words -. fr.child_words))

(* -- the instrumentation points the pipeline calls -- *)

let with_cell name f =
  match !current with
  | None -> f ()
  | Some t ->
    let prev = t.cell in
    t.cell <- name;
    Fun.protect f ~finally:(fun () -> t.cell <- prev)

let with_stage name f =
  match !current with None -> f () | Some t -> measure t Stage name f

let with_determinant name f =
  match !current with None -> f () | Some t -> measure t Determinant name f

(* -- rollups -- *)

(* Entries in stable order: aggregation then folds in a deterministic
   sequence, so float sums are byte-reproducible across runs. *)
let sorted_entries t =
  Hashtbl.fold (fun k b acc -> (k, b) :: acc) t.entries []
  |> List.sort (fun ((c1, k1, n1), _) ((c2, k2, n2), _) ->
         match String.compare c1 c2 with
         | 0 -> (
           match compare k1 k2 with
           | 0 -> String.compare n1 n2
           | c -> c)
         | c -> c)

type rollup = {
  r_name : string;
  mutable r_calls : int;
  mutable r_self_ns : int64;
  mutable r_self_words : float;
  mutable r_total_ns : int64;
  mutable r_total_words : float;
}

(* Aggregate over cells, keeping only entries of [kind]; sorted by
   self-words descending, name ascending on ties. *)
let rollup_by_name t kind =
  let table : (string, rollup) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun ((_, k, name), b) ->
      if k = kind then begin
        let r =
          match Hashtbl.find_opt table name with
          | Some r -> r
          | None ->
            let r =
              { r_name = name; r_calls = 0; r_self_ns = 0L;
                r_self_words = 0.0; r_total_ns = 0L; r_total_words = 0.0 }
            in
            Hashtbl.add table name r;
            order := name :: !order;
            r
        in
        r.r_calls <- r.r_calls + b.calls;
        r.r_self_ns <- Int64.add r.r_self_ns b.self_ns;
        r.r_self_words <- r.r_self_words +. b.self_words;
        r.r_total_ns <- Int64.add r.r_total_ns b.total_ns;
        r.r_total_words <- r.r_total_words +. b.total_words
      end)
    (sorted_entries t);
  List.rev_map (Hashtbl.find table) !order
  |> List.sort (fun a b ->
         match compare b.r_self_words a.r_self_words with
         | 0 -> String.compare a.r_name b.r_name
         | c -> c)

(* Distinct cell names (excluding work charged outside any cell). *)
let cells t =
  sorted_entries t
  |> List.filter_map (fun ((c, _, _), _) -> if c = "" then None else Some c)
  |> List.sort_uniq String.compare

(* Per-cell totals: sum of self-cost over every entry charged to the
   cell (stage self + determinant self = the cell's whole cost). *)
let cell_cost t cell =
  List.fold_left
    (fun (words, ns) ((c, _, _), b) ->
      if c = cell then (words +. b.self_words, Int64.add ns b.self_ns)
      else (words, ns))
    (0.0, 0L) (sorted_entries t)

let determinant_names t =
  sorted_entries t
  |> List.filter_map (fun ((_, k, n), _) ->
         if k = Determinant then Some n else None)
  |> List.sort_uniq String.compare

(* -- rendering -- *)

let kwords w = Printf.sprintf "%.1f" (w /. 1e3)

let ms ns = Printf.sprintf "%.3f" (Int64.to_float ns /. 1e6)

let right n = List.init n (fun _ -> Feam_util.Table.Right)

let rollup_table ~title ~label rows =
  Feam_util.Table.make ~title
    ~aligns:(Feam_util.Table.Left :: right 5)
    ~header:[ label; "Calls"; "Self kw"; "Self ms"; "Total kw"; "Total ms" ]
    (List.map
       (fun r ->
         [
           r.r_name;
           string_of_int r.r_calls;
           kwords r.r_self_words;
           ms r.r_self_ns;
           kwords r.r_total_words;
           ms r.r_total_ns;
         ])
       rows)

(* Top-K most expensive cells by self-words, with a per-determinant
   cost column for each determinant the run exercised. *)
let top_cells_table ?(top = 15) t =
  let dets = determinant_names t in
  let scored =
    List.map (fun c -> (c, cell_cost t c)) (cells t)
    |> List.sort (fun (c1, (w1, _)) (c2, (w2, _)) ->
           match compare w2 w1 with
           | 0 -> String.compare c1 c2
           | c -> c)
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  let rows =
    List.map
      (fun (cell, (words, ns)) ->
        let det_cols =
          List.map
            (fun d ->
              match Hashtbl.find_opt t.entries (cell, Determinant, d) with
              | Some b -> kwords b.self_words
              | None -> "-")
            dets
        in
        (cell :: kwords words :: ms ns :: det_cols))
      (take top scored)
  in
  Feam_util.Table.make
    ~title:(Printf.sprintf "top %d cells by cost (self kwords)" top)
    ~aligns:(Feam_util.Table.Left :: right (2 + List.length dets))
    ~header:([ "Cell"; "Self kw"; "Self ms" ] @ List.map (fun d -> d ^ " kw") dets)
    rows

let render ?top t =
  let entries = sorted_entries t in
  let total_words =
    List.fold_left (fun acc (_, b) -> acc +. b.self_words) 0.0 entries
  in
  let total_ns =
    List.fold_left (fun acc (_, b) -> Int64.add acc b.self_ns) 0L entries
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "cost ledger: %d cells, %d entries, %.3f Mwords allocated, %s ms\n\n"
       (List.length (cells t))
       (List.length entries)
       (total_words /. 1e6)
       (ms total_ns));
  Buffer.add_string b
    (Feam_util.Table.render
       (rollup_table ~title:"cost per stage" ~label:"Stage"
          (rollup_by_name t Stage)));
  Buffer.add_char b '\n';
  Buffer.add_string b
    (Feam_util.Table.render
       (rollup_table ~title:"cost per determinant" ~label:"Determinant"
          (rollup_by_name t Determinant)));
  Buffer.add_char b '\n';
  Buffer.add_string b (Feam_util.Table.render (top_cells_table ?top t));
  Buffer.add_char b '\n';
  Buffer.add_string b (Feam_util.Table.render (Cachestat.table ()));
  Buffer.contents b
