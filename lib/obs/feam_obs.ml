(* Feam_obs — structured tracing, metrics and profiling for the FEAM
   pipeline.

   Where `feam lint` (lib/analysis) says what is *wrong* with a bundle,
   this layer says what FEAM *did* and how long it took, mirroring the
   paper's §VI cost evaluation: hierarchical spans over every BDC /
   EDC / prediction / resolution step, a counters-gauges-histograms
   registry, and pluggable exporters (human-readable, JSONL, Chrome
   trace_event).  Everything is a no-op until [configure] selects a
   sink, so the instrumented pipeline stays deterministic by default. *)

module Clock = Clock
module Span = Span
module Sink = Sink
module Trace = Trace
module Metrics = Metrics
module Prof = Prof
module Expo = Expo
module Cachestat = Cachestat
module Ledger = Ledger
module Benchtrend = Benchtrend

type trace_format = Pretty | Jsonl | Chrome

let format_of_string = function
  | "pretty" -> Ok Pretty
  | "jsonl" -> Ok Jsonl
  | "chrome" -> Ok Chrome
  | other -> Error (Printf.sprintf "unknown trace format %S (use pretty, jsonl, or chrome)" other)

let format_to_string = function
  | Pretty -> "pretty"
  | Jsonl -> "jsonl"
  | Chrome -> "chrome"

let sink_of_format ~emit = function
  | Pretty -> Sink.pretty ~emit ()
  | Jsonl -> Sink.jsonl ~emit ()
  | Chrome -> Sink.chrome ~emit ()

(* [configure ?clock ~emit format] turns tracing on: spans flow to a
   sink of the given format, which hands its rendered output to [emit]
   at {!flush}. *)
let configure ?clock ~emit format =
  Trace.configure ?clock (sink_of_format ~emit format)

(* Flush hooks: other sinks that buffer output (the flight recorder's
   journal, for one) register here, keyed so re-registration replaces
   rather than duplicates.  [flush] then drains *every* buffered
   output in one idempotent call — the single helper every CLI exit
   path is expected to use before [exit]. *)
let hooks : (string * (unit -> unit)) list ref = ref []

let on_flush ~key f = hooks := (key, f) :: List.remove_assoc key !hooks

let remove_flush_hook key = hooks := List.remove_assoc key !hooks

let flush () =
  Trace.flush ();
  List.iter (fun (_, f) -> f ()) !hooks

(* Back to the pristine no-op state (tests). *)
let reset () =
  Trace.disable ();
  Trace.set_record_alloc false;
  Metrics.reset ();
  Prof.reset ();
  Ledger.uninstall ();
  hooks := []

(* Simulated seconds, bucketed against the paper's five-minute phase
   budget (§VI.C). *)
let sim_seconds_bounds = [| 0.1; 1.0; 5.0; 15.0; 60.0; 300.0 |]

(* Run [f] under a span named [name], attributing the simulated seconds
   it charges to [sim] both as a span attribute and as a sample of the
   [metric]{phase=[phase]} histogram — the shared shape of every
   evaluation-harness phase timer. *)
let with_sim_phase ~name ~metric ~phase sim f =
  Trace.with_span name @@ fun () ->
  let before = Feam_util.Sim_clock.elapsed sim in
  let result = f () in
  let spent = Feam_util.Sim_clock.elapsed sim -. before in
  Trace.set_attr "sim_s" (Span.Float spent);
  Metrics.observe
    ~labels:[ ("phase", phase) ]
    ~bounds:sim_seconds_bounds metric spent;
  result
