(* Exposition surfaces for the metrics registry: the Prometheus text
   format and a byte-deterministic JSONL snapshot, the two wire formats
   a resident `feam serve` will mount at /metrics.

   Both renderers iterate the registry in stable (sorted) order and
   format numbers without locale or precision surprises, so two runs of
   the same pipeline under the same clock produce byte-identical
   output — CI diffs them. *)

module Json = Feam_util.Json

(* -- names and labels -- *)

(* Prometheus metric names admit [a-zA-Z0-9_:]; everything else
   (our dots, mostly) normalizes to '_'.  All exported names carry the
   feam_ prefix. *)
let prom_name name =
  let b = Buffer.create (String.length name + 5) in
  Buffer.add_string b "feam_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

(* Label values escape backslash, double quote and newline, per the
   exposition-format spec. *)
let escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

(* Inverse of {!escape_label}; unknown escapes pass through verbatim so
   unescape never fails. *)
let unescape_label v =
  let b = Buffer.create (String.length v) in
  let n = String.length v in
  let rec go i =
    if i < n then
      if v.[i] = '\\' && i + 1 < n then begin
        (match v.[i + 1] with
        | '\\' -> Buffer.add_char b '\\'
        | '"' -> Buffer.add_char b '"'
        | 'n' -> Buffer.add_char b '\n'
        | c ->
          Buffer.add_char b '\\';
          Buffer.add_char b c);
        go (i + 2)
      end
      else begin
        Buffer.add_char b v.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents b

let sorted_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

(* Render a label set (possibly with extras appended, e.g. le=...) as
   {k="v",...}; empty label sets render as the empty string. *)
let prom_labels labels =
  match labels with
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> k ^ "=\"" ^ escape_label v ^ "\"") labels)
    ^ "}"

(* -- numbers -- *)

(* Counters and bucket counts are integers; everything else prints via
   %.17g-style shortest-roundtrip would be overkill — the registry only
   holds values we produced ourselves, so %g with an integer fast path
   is exact and stable. *)
let prom_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

(* -- Prometheus text format -- *)

let render_prom () =
  let entries = Metrics.snapshot () in
  (* Group entries by metric name: the format wants one # TYPE line per
     name, label variants beneath it.  The snapshot is key-sorted, which
     does not group names contiguously ('{' sorts after letters), so
     group explicitly and sort groups by name. *)
  let names =
    List.sort_uniq String.compare
      (List.map (fun (_, e) -> e.Metrics.name) entries)
  in
  let b = Buffer.create 4096 in
  List.iter
    (fun name ->
      let group =
        List.filter (fun (_, e) -> e.Metrics.name = name) entries
      in
      let kind =
        match group with
        | (_, e) :: _ -> Metrics.kind_to_string e.Metrics.metric
        | [] -> "untyped"
      in
      let pname = prom_name name in
      Buffer.add_string b ("# TYPE " ^ pname ^ " " ^ kind ^ "\n");
      List.iter
        (fun (_, e) ->
          let labels = sorted_labels e.Metrics.labels in
          match e.Metrics.metric with
          | Metrics.Counter c ->
            Buffer.add_string b
              (pname ^ prom_labels labels ^ " " ^ string_of_int !c ^ "\n")
          | Metrics.Gauge g ->
            Buffer.add_string b
              (pname ^ prom_labels labels ^ " " ^ prom_float !g ^ "\n")
          | Metrics.Histogram h ->
            (* Cumulative buckets, then +Inf, _sum and _count — the
               standard histogram exposition. *)
            let cumulative = ref 0 in
            Array.iteri
              (fun i bound ->
                cumulative := !cumulative + h.Metrics.counts.(i);
                Buffer.add_string b
                  (pname ^ "_bucket"
                  ^ prom_labels (labels @ [ ("le", prom_float bound) ])
                  ^ " " ^ string_of_int !cumulative ^ "\n"))
              h.Metrics.bounds;
            Buffer.add_string b
              (pname ^ "_bucket"
              ^ prom_labels (labels @ [ ("le", "+Inf") ])
              ^ " " ^ string_of_int h.Metrics.count ^ "\n");
            Buffer.add_string b
              (pname ^ "_sum" ^ prom_labels labels ^ " "
              ^ prom_float h.Metrics.sum ^ "\n");
            Buffer.add_string b
              (pname ^ "_count" ^ prom_labels labels ^ " "
              ^ string_of_int h.Metrics.count ^ "\n"))
        group)
    names;
  Buffer.contents b

(* -- JSONL snapshot -- *)

(* One record per registry entry, key-sorted, rendered through the
   canonical JSON printer: byte-deterministic by construction.  The
   timestamp comes from the caller (default 0) so snapshots diff clean
   unless the caller opts into wall time. *)
let render_jsonl ?(now_ns = 0L) () =
  let b = Buffer.create 4096 in
  List.iter
    (fun (k, e) ->
      let record =
        Json.Obj
          [
            ("ts_ns", Json.Int (Int64.to_int now_ns));
            ("key", Json.Str k);
            ("name", Json.Str e.Metrics.name);
            ( "labels",
              Json.Obj
                (List.map
                   (fun (lk, lv) -> (lk, Json.Str lv))
                   (sorted_labels e.Metrics.labels)) );
            ("kind", Json.Str (Metrics.kind_to_string e.Metrics.metric));
            ("value", Metrics.metric_to_json e.Metrics.metric);
          ]
      in
      Buffer.add_string b (Json.render record);
      Buffer.add_char b '\n')
    (Metrics.snapshot ());
  Buffer.contents b
