(* Process-global metrics registry: counters, gauges, and fixed-bucket
   histograms, each addressed by a name plus optional labels
   (e.g. predict.outcome{result=ready}).  Recording is always on — it is
   cheap, changes no output, and lets `feam metrics` report on a run
   that never configured a trace sink. *)

type hist = {
  bounds : float array; (* ascending upper bucket bounds *)
  counts : int array;   (* length bounds + 1; the last is overflow *)
  mutable sum : float;
  mutable count : int;
}

type metric =
  | Counter of int ref
  | Gauge of float ref
  | Histogram of hist

type entry = {
  name : string;
  labels : (string * string) list;
  metric : metric;
}

let registry : (string, entry) Hashtbl.t = Hashtbl.create 64

(* Recording can be switched off mid-run (e.g. to freeze a snapshot
   while later pipeline stages keep executing); writes become no-ops
   but reads keep working.  [reset] re-enables. *)
let enabled = ref true

let set_enabled v = enabled := v

let is_enabled () = !enabled

let key name labels =
  match labels with
  | [] -> name
  | labels ->
    let labels =
      List.sort (fun (a, _) (b, _) -> String.compare a b) labels
    in
    name ^ "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
    ^ "}"

(* Nanosecond-oriented defaults: 1us up to 10s, plus overflow. *)
let default_bounds = [| 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9; 1e10 |]

let find_or_add name labels make =
  let k = key name labels in
  match Hashtbl.find_opt registry k with
  | Some e -> e.metric
  | None ->
    let metric = make () in
    Hashtbl.add registry k { name; labels; metric };
    metric

let incr ?(by = 1) ?(labels = []) name =
  if !enabled then
    match find_or_add name labels (fun () -> Counter (ref 0)) with
    | Counter c -> c := !c + by
    | Gauge _ | Histogram _ ->
      invalid_arg ("Metrics.incr: " ^ name ^ " is not a counter")

let set_gauge ?(labels = []) name v =
  if !enabled then
    match find_or_add name labels (fun () -> Gauge (ref 0.0)) with
    | Gauge g -> g := v
    | Counter _ | Histogram _ ->
      invalid_arg ("Metrics.set_gauge: " ^ name ^ " is not a gauge")

(* [bounds] only takes effect when the histogram is first created. *)
let observe ?(labels = []) ?(bounds = default_bounds) name v =
  if !enabled then begin
    let make () =
      Histogram
        {
          bounds;
          counts = Array.make (Array.length bounds + 1) 0;
          sum = 0.0;
          count = 0;
        }
    in
    match find_or_add name labels make with
    | Histogram h ->
      let rec bucket i =
        if i >= Array.length h.bounds then i
        else if v <= h.bounds.(i) then i
        else bucket (i + 1)
      in
      let i = bucket 0 in
      h.counts.(i) <- h.counts.(i) + 1;
      h.sum <- h.sum +. v;
      h.count <- h.count + 1
    | Counter _ | Gauge _ ->
      invalid_arg ("Metrics.observe: " ^ name ^ " is not a histogram")
  end

let counter_value ?(labels = []) name =
  match Hashtbl.find_opt registry (key name labels) with
  | Some { metric = Counter c; _ } -> Some !c
  | _ -> None

let gauge_value ?(labels = []) name =
  match Hashtbl.find_opt registry (key name labels) with
  | Some { metric = Gauge g; _ } -> Some !g
  | _ -> None

let histogram_value ?(labels = []) name =
  match Hashtbl.find_opt registry (key name labels) with
  | Some { metric = Histogram h; _ } -> Some h
  | _ -> None

let hist_mean h = if h.count = 0 then 0.0 else h.sum /. float_of_int h.count

let reset () =
  Hashtbl.reset registry;
  enabled := true

(* Entries in stable (key-sorted) order, for rendering and tests. *)
let snapshot () =
  Hashtbl.fold (fun k e acc -> (k, e) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let value_to_string = function
  | Counter c -> string_of_int !c
  | Gauge g -> Printf.sprintf "%g" !g
  | Histogram h ->
    Printf.sprintf "n=%d mean=%g sum=%g" h.count (hist_mean h) h.sum

let kind_to_string = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let render_text () =
  let rows =
    List.map
      (fun (k, e) -> [ k; kind_to_string e.metric; value_to_string e.metric ])
      (snapshot ())
  in
  Feam_util.Table.render
    (Feam_util.Table.make ~title:"feam metrics"
       ~aligns:[ Feam_util.Table.Left; Feam_util.Table.Left; Feam_util.Table.Right ]
       ~header:[ "Metric"; "Kind"; "Value" ]
       rows)

let metric_to_json = function
  | Counter c -> Feam_util.Json.Int !c
  | Gauge g -> Feam_util.Json.Float !g
  | Histogram h ->
    let open Feam_util.Json in
    Obj
      [
        ("count", Int h.count);
        ("sum", Float h.sum);
        ("mean", Float (hist_mean h));
        ("bounds", List (Array.to_list (Array.map (fun b -> Float b) h.bounds)));
        ("counts", List (Array.to_list (Array.map (fun c -> Int c) h.counts)));
      ]

let to_json () =
  let open Feam_util.Json in
  Obj
    (List.map
       (fun (k, e) ->
         ( k,
           Obj
             [
               ("name", Str e.name);
               ( "labels",
                 Obj (List.map (fun (lk, lv) -> (lk, Str lv)) e.labels) );
               ("kind", Str (kind_to_string e.metric));
               ("value", metric_to_json e.metric);
             ] ))
       (snapshot ()))
