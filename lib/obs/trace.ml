(* The tracer: hierarchical spans over an injectable clock, with
   completed spans handed to the configured sink.

   Disabled (the default) the tracer is a strict no-op: [with_span]
   runs its thunk directly without allocating, so instrumentation left
   in the hot paths costs nothing and changes no golden output. *)

type state = {
  mutable enabled : bool;
  mutable sink : Sink.t;
  mutable clock : Clock.t;
  mutable next_id : int;
  mutable stack : Span.t list; (* innermost open span first *)
  mutable record_alloc : bool; (* bracket spans with Gc counters *)
}

let st =
  {
    enabled = false;
    sink = Sink.noop;
    clock = Clock.fixed ();
    next_id = 1;
    stack = [];
    record_alloc = false;
  }

(* Opt-in allocation accounting: when on, every completed span carries
   alloc_minor_w/alloc_major_w attributes with the words its body
   allocated on each heap.  Off by default — reading the Gc counters
   per span is cheap but not free, and the extra attributes would churn
   the golden traces. *)
let set_record_alloc v = st.record_alloc <- v

let record_alloc () = st.record_alloc

let configure ?(clock = Clock.fixed ()) sink =
  st.enabled <- true;
  st.sink <- sink;
  st.clock <- clock;
  st.next_id <- 1;
  st.stack <- []

let disable () =
  st.enabled <- false;
  st.sink <- Sink.noop;
  st.next_id <- 1;
  st.stack <- []

let enabled () = st.enabled

let now_ns () = st.clock ()

(* Id of the innermost open span, if any — lets other subsystems (the
   flight recorder) link their records back to the trace. *)
let current_span_id () =
  match st.stack with [] -> None | span :: _ -> Some span.Span.id

(* Attach an attribute to the innermost open span (no-op outside one). *)
let set_attr key value =
  match st.stack with
  | [] -> ()
  | span :: _ -> span.Span.attrs <- (key, value) :: span.Span.attrs

(* Record a point-in-time event on the innermost open span. *)
let event ?(attrs = []) name =
  match st.stack with
  | [] -> ()
  | span :: _ ->
    span.Span.events <-
      { Span.ev_name = name; ev_at_ns = st.clock (); ev_attrs = attrs }
      :: span.Span.events

let with_span ?attrs name f =
  if not st.enabled then f ()
  else begin
    let parent, depth =
      match st.stack with
      | [] -> (None, 0)
      | p :: _ -> (Some p.Span.id, p.Span.depth + 1)
    in
    let span =
      {
        Span.id = st.next_id;
        parent;
        depth;
        name;
        start_ns = st.clock ();
        duration_ns = 0L;
        (* attrs accumulate reversed while open; completion restores
           declaration order below *)
        attrs = (match attrs with None -> [] | Some a -> List.rev a);
        events = [];
      }
    in
    st.next_id <- st.next_id + 1;
    st.stack <- span :: st.stack;
    (* Gc.minor_words (not the quick_stat field) reads the allocation
       pointer, so short spans still see their minor allocations. *)
    let alloc0 =
      if st.record_alloc then Some (Gc.minor_words (), Gc.quick_stat ())
      else None
    in
    Fun.protect
      ~finally:(fun () ->
        (match st.stack with
        | s :: rest when s == span -> st.stack <- rest
        | _ -> ());
        (match alloc0 with
        | None -> ()
        | Some (minor0, g0) ->
          let g1 = Gc.quick_stat () in
          (* Prepended while still reversed, so after the rev below
             these land after the span's declared attributes. *)
          span.Span.attrs <-
            ("alloc_major_w",
             Span.Float (g1.Gc.major_words -. g0.Gc.major_words))
            :: ("alloc_minor_w", Span.Float (Gc.minor_words () -. minor0))
            :: span.Span.attrs);
        span.Span.duration_ns <- Int64.sub (st.clock ()) span.Span.start_ns;
        span.Span.attrs <- List.rev span.Span.attrs;
        span.Span.events <- List.rev span.Span.events;
        st.sink.Sink.on_span span)
      f
  end

let flush () = st.sink.Sink.flush ()
