(* Labeled timers with allocation accounting.

   Spans answer "what did the pipeline do"; these timers answer "what
   does one named operation cost" — wall nanoseconds through an
   injectable clock plus allocated words from the [Gc] counters — and
   feed the metrics registry so `feam stats` can expose the
   distributions.  Like tracing, the whole module is a strict no-op
   until [set_enabled true]: the disabled path is one ref read, so
   timers left in hot paths cost nothing.

   Writes go through {!Metrics}, so [Metrics.set_enabled false] freezes
   timer recording too (the timed code still runs). *)

type state = { mutable enabled : bool; mutable clock : Clock.t }

let st = { enabled = false; clock = Clock.fixed () }

let set_enabled v = st.enabled <- v
let is_enabled () = st.enabled

(* The default fixed clock keeps timer output deterministic; the CLI
   installs {!Clock.wall} when real durations are wanted. *)
let set_clock c = st.clock <- c

let reset () =
  st.enabled <- false;
  st.clock <- Clock.fixed ()

(* Words allocated since program start, minor and major heaps combined
   (promotions counted once).  [Gc.minor_words] rather than the
   quick_stat field: only the former reads the allocation pointer, so
   spans shorter than a GC cycle still see their allocations. *)
let allocated_words () =
  let s = Gc.quick_stat () in
  Gc.minor_words () +. s.Gc.major_words -. s.Gc.promoted_words

(* Allocation bucket bounds, in words: 100 w up to 100 Mw. *)
let alloc_bounds = [| 1e2; 1e3; 1e4; 1e5; 1e6; 1e7; 1e8 |]

(* [with_timer ?labels name f] runs [f], observing its duration into the
   [name].ns histogram, its allocation into [name].alloc_words, and
   bumping the [name].calls counter — all under [labels]. *)
let with_timer ?(labels = []) name f =
  if not st.enabled then f ()
  else begin
    let t0 = st.clock () in
    let w0 = allocated_words () in
    Fun.protect f ~finally:(fun () ->
        let dt = Int64.to_float (Int64.sub (st.clock ()) t0) in
        let dw = allocated_words () -. w0 in
        Metrics.incr ~labels (name ^ ".calls");
        Metrics.observe ~labels (name ^ ".ns") dt;
        Metrics.observe ~labels ~bounds:alloc_bounds (name ^ ".alloc_words") dw)
  end
