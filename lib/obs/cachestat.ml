(* Cache-efficiency telemetry, derived from the counter registry.

   Every cache in the pipeline reports plain hit/miss counters under a
   shared naming convention — `<cache>.hit`/`<cache>.miss` (or the
   plural `_hits`/`_misses` the depot planner uses) with an optional
   `saved_bytes` sibling for caches that avoid byte traffic.  This
   module discovers those pairs generically, computes hit rates, sets
   `cache.hit_rate{cache=...}` gauges for the exposition surfaces, and
   renders the cache-saves table `evaltool --costs` prints.  New caches
   join the observatory by naming their counters, not by editing this
   file. *)

type stat = {
  cache : string;           (* base name, e.g. bdc.describe_cache *)
  hits : int;
  misses : int;
  saved_bytes : int option; (* bytes the hits avoided moving/reading *)
}

(* (hit, miss, saved_bytes) suffix families recognized on unlabeled
   counters. *)
let families =
  [
    (".hit", ".miss", ".saved_bytes");
    ("_hits", "_misses", "_saved_bytes");
  ]

let chop name suffix =
  if String.length name > String.length suffix
     && Filename.check_suffix name suffix
  then Some (String.sub name 0 (String.length name - String.length suffix))
  else None

let all () =
  let entries = Metrics.snapshot () in
  let counter name =
    List.find_map
      (fun (k, e) ->
        match e.Metrics.metric with
        | Metrics.Counter c when k = name -> Some !c
        | _ -> None)
      entries
  in
  entries
  |> List.filter_map (fun (k, (e : Metrics.entry)) ->
         if e.labels <> [] then None
         else
           List.find_map
             (fun (hit_suf, miss_suf, saved_suf) ->
               match (chop k hit_suf, e.metric) with
               | Some base, Metrics.Counter hits ->
                 Some
                   {
                     cache = base;
                     hits = !hits;
                     misses =
                       Option.value ~default:0 (counter (base ^ miss_suf));
                     saved_bytes = counter (base ^ saved_suf);
                   }
               | _ -> None)
             families)
  |> List.sort (fun a b -> String.compare a.cache b.cache)

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

(* Publish a cache.hit_rate{cache=...} gauge per discovered cache, so
   `feam stats` exposes rates and not just raw pairs. *)
let set_gauges () =
  List.iter
    (fun s ->
      Metrics.set_gauge ~labels:[ ("cache", s.cache) ] "cache.hit_rate"
        (hit_rate s))
    (all ())

let table () =
  let rows =
    List.map
      (fun s ->
        [
          s.cache;
          string_of_int s.hits;
          string_of_int s.misses;
          Feam_util.Table.percent s.hits (s.hits + s.misses);
          (match s.saved_bytes with
          | Some n -> Printf.sprintf "%d B" n
          | None -> "-");
        ])
      (all ())
  in
  Feam_util.Table.make ~title:"cache efficiency"
    ~aligns:
      [
        Feam_util.Table.Left;
        Feam_util.Table.Right;
        Feam_util.Table.Right;
        Feam_util.Table.Right;
        Feam_util.Table.Right;
      ]
    ~header:[ "Cache"; "Hits"; "Misses"; "Hit rate"; "Saved" ]
    rows
