(* Time sources for the observability layer.

   Spans measure durations through an injectable clock so that
   deterministic tests (and the simulated evaluation) stay reproducible:
   the default source is a fixed clock that always reads zero, the CLI
   installs the wall clock, tests drive a manual clock by hand, and a
   {!Feam_util.Sim_clock} can be read as nanoseconds so span durations
   line up with the paper's simulated per-phase costs (§VI.C). *)

type t = unit -> int64 (* nanoseconds *)

let fixed ?(at = 0L) () : t = fun () -> at

(* Wall clock.  gettimeofday is not strictly monotonic, but the
   pipeline never sleeps and the exporters only subtract nearby
   readings; good enough without a C stub for a monotonic source. *)
let wall : t = fun () -> Int64.of_float (Unix.gettimeofday () *. 1e9)

(* A hand-driven clock for deterministic span tests. *)
type manual = { mutable now_ns : int64 }

let manual () = { now_ns = 0L }

let of_manual m : t = fun () -> m.now_ns

let advance m ns =
  if Int64.compare ns 0L < 0 then invalid_arg "Clock.advance: negative step";
  m.now_ns <- Int64.add m.now_ns ns

(* Read a simulated wall clock as nanoseconds: span durations then
   report the simulated seconds the operations under them charged. *)
let of_sim_clock sim : t =
 fun () -> Int64.of_float (Feam_util.Sim_clock.elapsed sim *. 1e9)
