(* The perf-regression sentinel: schema and comparison logic for
   BENCH_history.jsonl, the bench suite's run-over-run trajectory.

   bench/main.ml appends one line per run — a sequence number plus each
   bench's mean ns/op (no timestamps, per the repo's determinism
   discipline) — and `feam bench report` compares the latest run
   against the geometric mean of a rolling window of earlier runs,
   flagging any bench whose ratio exceeds a threshold.  The same module
   validates both BENCH files for CI, so the schema lives in exactly
   one place. *)

module Json = Feam_util.Json
module Table = Feam_util.Table

let schema_version = 1

type run = {
  seq : int; (* 1-based, strictly increasing down the file *)
  benches : (string * float) list; (* bench name -> mean ns/op *)
}

(* -- history serialization -- *)

let run_to_json r =
  Json.Obj
    [
      ("schema", Json.Int schema_version);
      ("run", Json.Int r.seq);
      ( "benches",
        Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) r.benches) );
    ]

let number = function
  | Json.Float f -> Some f
  | Json.Int i -> Some (float_of_int i)
  | _ -> None

let run_of_json json =
  match
    ( Option.bind (Json.member "schema" json) Json.to_int_opt,
      Option.bind (Json.member "run" json) Json.to_int_opt,
      Json.member "benches" json )
  with
  | Some v, _, _ when v <> schema_version ->
    Error (Printf.sprintf "unsupported schema %d (want %d)" v schema_version)
  | Some _, Some seq, Some (Json.Obj benches) ->
    let rec convert acc = function
      | [] -> Ok { seq; benches = List.rev acc }
      | (name, v) :: rest -> (
        match number v with
        | Some ns when ns > 0.0 -> convert ((name, ns) :: acc) rest
        | Some _ -> Error (Printf.sprintf "bench %S: ns/op must be positive" name)
        | None -> Error (Printf.sprintf "bench %S: ns/op is not a number" name))
    in
    convert [] benches
  | _ -> Error "record needs integer schema/run and a benches object"

let parse_history text =
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
  in
  let rec go lineno last_seq acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      let fail msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
      match Json.parse line with
      | Error e -> fail e
      | Ok json -> (
        match run_of_json json with
        | Error e -> fail e
        | Ok run ->
          if run.seq <= last_seq then
            fail
              (Printf.sprintf "run %d does not increase on previous run %d"
                 run.seq last_seq)
          else go (lineno + 1) run.seq (run :: acc) rest))
  in
  go 1 0 [] lines

let render_history runs =
  String.concat "" (List.map (fun r -> Json.render (run_to_json r) ^ "\n") runs)

(* -- comparison -- *)

let geomean = function
  | [] -> invalid_arg "Benchtrend.geomean: empty"
  | xs ->
    exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs
         /. float_of_int (List.length xs))

type comparison = {
  bench : string;
  baseline : float; (* geomean ns/op over the window *)
  latest : float;
  ratio : float;    (* latest / baseline; > 1 is slower *)
  regressed : bool;
}

type report = {
  latest_seq : int;
  window : int;     (* baseline runs actually used *)
  threshold : float;
  rows : comparison list;      (* bench-name order *)
  geomean_ratio : float option; (* None when no bench overlaps *)
}

type outcome =
  | No_runs
  | No_baseline of run (* the history holds only this first run *)
  | Compared of report

(* Compare the last run against the geometric mean of up to [window]
   runs before it.  A bench only participates when the baseline window
   recorded it at least once; brand-new benches are reported separately
   by their absence from [rows]. *)
let evaluate ?(window = 5) ?(threshold = 1.30) runs =
  match List.rev runs with
  | [] -> No_runs
  | latest :: [] -> No_baseline latest
  | latest :: earlier ->
    let baseline_runs = List.filteri (fun i _ -> i < window) earlier in
    let rows =
      latest.benches
      |> List.filter_map (fun (name, ns) ->
             let history =
               List.filter_map
                 (fun r -> List.assoc_opt name r.benches)
                 baseline_runs
             in
             match history with
             | [] -> None
             | history ->
               let baseline = geomean history in
               let ratio = ns /. baseline in
               Some
                 { bench = name; baseline; latest = ns; ratio;
                   regressed = ratio > threshold })
      |> List.sort (fun a b -> String.compare a.bench b.bench)
    in
    Compared
      {
        latest_seq = latest.seq;
        window = List.length baseline_runs;
        threshold;
        rows;
        geomean_ratio =
          (match rows with
          | [] -> None
          | rows -> Some (geomean (List.map (fun r -> r.ratio) rows)));
      }

let regressions report = List.filter (fun r -> r.regressed) report.rows

let exit_code = function
  | Compared report when regressions report <> [] -> 1
  | No_runs | No_baseline _ | Compared _ -> 0

let render = function
  | No_runs -> "bench report: no runs recorded (run the bench suite first)\n"
  | No_baseline r ->
    Printf.sprintf
      "bench report: no baseline yet — run %d is the first recorded entry \
       (%d benches)\n"
      r.seq
      (List.length r.benches)
  | Compared report ->
    let flag c =
      if c.regressed then "REGRESSED"
      else if c.ratio < 1.0 /. report.threshold then "improved"
      else ""
    in
    let rows =
      List.map
        (fun c ->
          [
            c.bench;
            Printf.sprintf "%.1f" c.baseline;
            Printf.sprintf "%.1f" c.latest;
            Printf.sprintf "%.2fx" c.ratio;
            flag c;
          ])
        report.rows
    in
    let table =
      Table.make
        ~title:
          (Printf.sprintf "bench trend: run %d vs geomean of last %d run%s"
             report.latest_seq report.window
             (if report.window = 1 then "" else "s"))
        ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Left ]
        ~header:[ "Bench"; "Baseline ns"; "Latest ns"; "Ratio"; "" ]
        rows
    in
    let summary =
      match report.geomean_ratio with
      | None -> "no bench overlaps the baseline window\n"
      | Some g ->
        Printf.sprintf
          "geomean ratio %.3fx over %d benches (threshold %.2fx): %d \
           regression%s\n"
          g (List.length report.rows) report.threshold
          (List.length (regressions report))
          (if List.length (regressions report) = 1 then "" else "s")
    in
    Table.render table ^ summary

(* -- BENCH_feam.json schema validation (CI) -- *)

(* Validate the bench snapshot written by bench/main.ml: schema tag,
   numeric headline means, and per-bench histograms whose bucket counts
   are consistent with the recorded iteration count.  Returns the bench
   count or every problem found. *)
let validate_bench_json json =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  (match Option.bind (Json.member "schema" json) Json.to_int_opt with
  | Some v when v = schema_version -> ()
  | Some v -> err "schema: unsupported version %d (want %d)" v schema_version
  | None -> err "schema: missing integer field");
  (match Json.member "headline_ns_per_op" json with
  | Some (Json.Obj fields) ->
    List.iter
      (fun (name, v) ->
        match number v with
        | Some ns when ns > 0.0 -> ()
        | _ -> err "headline_ns_per_op.%s: not a positive number" name)
      fields
  | Some _ -> err "headline_ns_per_op: not an object"
  | None -> err "headline_ns_per_op: missing");
  let benches =
    match Json.member "benches" json with
    | Some (Json.List benches) -> benches
    | Some _ ->
      err "benches: not a list";
      []
    | None ->
      err "benches: missing";
      []
  in
  List.iteri
    (fun i bench ->
      let name =
        match Option.bind (Json.member "name" bench) Json.to_string_opt with
        | Some n -> n
        | None ->
          err "benches[%d]: missing name" i;
          Printf.sprintf "benches[%d]" i
      in
      let iterations =
        match Option.bind (Json.member "iterations" bench) Json.to_int_opt with
        | Some n when n >= 1 -> Some n
        | Some n ->
          err "%s: iterations %d < 1" name n;
          None
        | None ->
          err "%s: missing integer iterations" name;
          None
      in
      (match Option.bind (Json.member "ns_per_op" bench) number with
      | Some ns when ns > 0.0 -> ()
      | _ -> err "%s: ns_per_op is not a positive number" name);
      let bounds =
        match Json.member "bounds_ns" bench with
        | Some (Json.List bs) ->
          let floats = List.filter_map number bs in
          if List.length floats <> List.length bs then begin
            err "%s: bounds_ns holds non-numbers" name;
            None
          end
          else begin
            let rec ascending = function
              | a :: (b :: _ as rest) -> a < b && ascending rest
              | _ -> true
            in
            if not (ascending floats) then
              err "%s: bounds_ns is not strictly ascending" name;
            Some floats
          end
        | _ ->
          err "%s: missing bounds_ns list" name;
          None
      in
      match Json.member "bucket_counts" bench with
      | Some (Json.List cs) -> (
        let counts = List.filter_map Json.to_int_opt cs in
        if List.length counts <> List.length cs then
          err "%s: bucket_counts holds non-integers" name
        else begin
          (match bounds with
          | Some bounds when List.length counts <> List.length bounds + 1 ->
            err "%s: %d bucket counts for %d bounds (want bounds+1)" name
              (List.length counts) (List.length bounds)
          | _ -> ());
          match iterations with
          | Some n when List.fold_left ( + ) 0 counts <> n ->
            err "%s: bucket counts sum to %d, iterations say %d" name
              (List.fold_left ( + ) 0 counts)
              n
          | _ -> ()
        end)
      | _ -> err "%s: missing bucket_counts list" name)
    benches;
  match !errors with
  | [] -> Ok (List.length benches)
  | errors -> Error (List.rev errors)
