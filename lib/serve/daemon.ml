(* The daemon's transport layer: a signal-aware line loop over any
   (next, write) pair, plus stdio, unix-socket and TCP bindings.

   Graceful shutdown contract: SIGINT/SIGTERM only set a flag.  The
   request in flight completes and its response is written (the drain),
   the loop exits before reading another line, and [Feam_obs.flush]
   runs the idempotent flush hooks — so trace and journal sinks are
   never truncated mid-record, however the daemon dies. *)

module Recorder = Feam_flightrec.Recorder

let stop_flag = ref false

let stop_requested () = !stop_flag

let request_stop () = stop_flag := true

(* Install the stop-flag handlers for the duration of [f]; restore
   whatever was there before (alcotest's own state, the default
   behaviour) on the way out. *)
let with_signals f =
  stop_flag := false;
  let install sg = Sys.signal sg (Sys.Signal_handle (fun _ -> request_stop ())) in
  let prev_int = install Sys.sigint in
  let prev_term = install Sys.sigterm in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigint prev_int;
      Sys.set_signal Sys.sigterm prev_term)
    f

type outcome = {
  served : int;  (** requests answered (including error responses) *)
  parse_errors : int;
  shutdown : bool;  (** a shutdown verb was served *)
  interrupted : bool;  (** the stop flag ended the loop *)
}

let journal_exchange ~verb ~ok ~line ~response =
  if Recorder.enabled () then
    Recorder.serve_request ~verb ~ok ~bytes_in:(String.length line)
      ~bytes_out:(String.length response)

(* The loop itself assumes the stop-flag handlers are already in place
   ([with_signals]); tests drive it with hand-rolled transports and a
   mid-request [on_request] hook. *)
let serve_lines ?(on_request = fun (_ : string) -> ()) engine ~next ~write =
  let served = ref 0 and parse_errors = ref 0 and shutdown = ref false in
  let continue = ref true in
  while !continue && not (stop_requested ()) do
    match next () with
    | None -> continue := false
    | Some line ->
      on_request line;
      let verb, ok, response =
        match Protocol.parse line with
        | Error e ->
          incr parse_errors;
          (Protocol.error_code e, false, Protocol.error_response e)
        | Ok req ->
          let response =
            try Engine.handle engine req
            with exn ->
              Feam_util.Json.render
                (Feam_util.Json.Obj
                   [
                     ("ok", Feam_util.Json.Bool false);
                     ("error", Feam_util.Json.Str "internal");
                     ("detail", Feam_util.Json.Str (Printexc.to_string exn));
                   ])
          in
          if req = Protocol.Shutdown then shutdown := true;
          (Protocol.verb_of_request req, true, response)
      in
      journal_exchange ~verb ~ok ~line ~response;
      write (response ^ "\n");
      incr served;
      if !shutdown then continue := false
  done;
  (* The drain: flush every buffered sink exactly once per loop exit —
     idempotent, so the transport wrappers may flush again. *)
  Feam_obs.flush ();
  {
    served = !served;
    parse_errors = !parse_errors;
    shutdown = !shutdown;
    interrupted = stop_requested ();
  }

(* -- transports -------------------------------------------------------- *)

let run_stdio engine =
  with_signals @@ fun () ->
  serve_lines engine
    ~next:(fun () -> try Some (input_line stdin) with End_of_file -> None)
    ~write:(fun s ->
      print_string s;
      flush stdout)

let channel_client engine ic oc =
  serve_lines engine
    ~next:(fun () -> try Some (input_line ic) with End_of_file -> None)
    ~write:(fun s ->
      output_string oc s;
      flush oc)

(* Accept clients one at a time; each connection is its own line loop.
   EINTR from a signal falls through to the stop-flag check. *)
let accept_loop engine sock =
  let last = ref None in
  let continue = ref true in
  while !continue && not (stop_requested ()) do
    match Unix.accept sock with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | fd, _ ->
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      let outcome =
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () -> channel_client engine ic oc)
      in
      last := Some outcome;
      if outcome.shutdown then continue := false
  done;
  match !last with
  | Some o -> o
  | None ->
    { served = 0; parse_errors = 0; shutdown = false; interrupted = stop_requested () }

let run_unix_socket engine path =
  with_signals @@ fun () ->
  if Sys.file_exists path then Sys.remove path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      accept_loop engine sock)

let run_tcp engine port =
  with_signals @@ fun () ->
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen sock 8;
      accept_loop engine sock)
