(** The daemon's line-delimited JSON wire protocol: request grammar and
    typed parse errors.  [parse] is total — it never raises, whatever
    the line contains — so one bad client line costs one error
    response, never the daemon. *)

type query = { q_binary : string; q_target : string }

type action =
  | Stale_ld_cache  (** mark the site's ld cache stale *)
  | Fresh_ld_cache  (** mark it current again *)
  | Remove_lib of string  (** drop a library basename from the site *)

type request =
  | Predict of query
  | Predict_batch of query list
  | Register_site of string  (** Table II catalog spec name *)
  | Register_binary of { rb_home : string; rb_benchmark : string }
  | Update_evidence of { ue_site : string; ue_action : action }
  | Snapshot_fleet of { sf_out : string option }
  | Crosscheck
  | Stats
  | Shutdown

type error =
  | Empty_line
  | Oversized of int  (** actual byte length *)
  | Malformed of string  (** JSON parse error *)
  | Not_an_object
  | Missing_verb
  | Unknown_verb of string
  | Missing_field of { verb : string; field : string }
  | Bad_field of { field : string; expected : string }

(** Hard per-line byte cap; longer lines are rejected unparsed. *)
val max_line_bytes : int

val verb_of_request : request -> string

val action_to_string : action -> string

val parse : string -> (request, error) result

val error_code : error -> string

val error_detail : error -> string

(** The rendered [{"ok":false,...}] response line for a parse error. *)
val error_response : error -> string
