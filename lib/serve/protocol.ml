(* The daemon's wire protocol: one request per line, one JSON object
   per request, one JSON response line per request.  The parser is
   total — malformed, truncated, oversized or unknown input maps to a
   typed error, never an exception — because a bad client line must
   cost the daemon one error response, not its life.

   Responses are rendered elsewhere (engine/daemon); this module owns
   the request grammar and the error vocabulary. *)

module Json = Feam_util.Json

type query = { q_binary : string; q_target : string }

type action = Stale_ld_cache | Fresh_ld_cache | Remove_lib of string

type request =
  | Predict of query
  | Predict_batch of query list
  | Register_site of string
  | Register_binary of { rb_home : string; rb_benchmark : string }
  | Update_evidence of { ue_site : string; ue_action : action }
  | Snapshot_fleet of { sf_out : string option }
  | Crosscheck
  | Stats
  | Shutdown

type error =
  | Empty_line
  | Oversized of int
  | Malformed of string
  | Not_an_object
  | Missing_verb
  | Unknown_verb of string
  | Missing_field of { verb : string; field : string }
  | Bad_field of { field : string; expected : string }

(* Large enough for any legitimate predict-batch over the full Table II
   matrix; small enough that a runaway client cannot balloon memory. *)
let max_line_bytes = 1 lsl 16

let verb_of_request = function
  | Predict _ -> "predict"
  | Predict_batch _ -> "predict-batch"
  | Register_site _ -> "register-site"
  | Register_binary _ -> "register-binary"
  | Update_evidence _ -> "update-evidence"
  | Snapshot_fleet _ -> "snapshot"
  | Crosscheck -> "crosscheck"
  | Stats -> "stats"
  | Shutdown -> "shutdown"

let action_to_string = function
  | Stale_ld_cache -> "stale-ld-cache"
  | Fresh_ld_cache -> "fresh-ld-cache"
  | Remove_lib _ -> "remove-lib"

(* -- parsing ----------------------------------------------------------- *)

let str_field obj ~verb ~field =
  match Json.member field obj with
  | Some (Json.Str s) -> Ok s
  | Some _ -> Error (Bad_field { field; expected = "string" })
  | None -> Error (Missing_field { verb; field })

let opt_str_field obj ~field =
  match Json.member field obj with
  | Some (Json.Str s) -> Ok (Some s)
  | Some Json.Null | None -> Ok None
  | Some _ -> Error (Bad_field { field; expected = "string" })

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let parse_query ~verb obj =
  let* q_binary = str_field obj ~verb ~field:"binary" in
  let* q_target = str_field obj ~verb ~field:"target" in
  Ok { q_binary; q_target }

let parse_action obj =
  let verb = "update-evidence" in
  let* action = str_field obj ~verb ~field:"action" in
  match action with
  | "stale-ld-cache" -> Ok Stale_ld_cache
  | "fresh-ld-cache" -> Ok Fresh_ld_cache
  | "remove-lib" ->
    let* lib = str_field obj ~verb ~field:"lib" in
    Ok (Remove_lib lib)
  | _ ->
    Error
      (Bad_field
         {
           field = "action";
           expected = "stale-ld-cache, fresh-ld-cache, or remove-lib";
         })

let parse_verb verb obj =
  match verb with
  | "predict" ->
    let* q = parse_query ~verb obj in
    Ok (Predict q)
  | "predict-batch" -> (
    match Json.member "queries" obj with
    | Some (Json.List qs) ->
      let rec go acc = function
        | [] -> Ok (Predict_batch (List.rev acc))
        | q :: rest ->
          let* q = parse_query ~verb q in
          go (q :: acc) rest
      in
      go [] qs
    | Some _ -> Error (Bad_field { field = "queries"; expected = "list" })
    | None -> Error (Missing_field { verb; field = "queries" }))
  | "register-site" ->
    let* site = str_field obj ~verb ~field:"site" in
    Ok (Register_site site)
  | "register-binary" ->
    let* rb_home = str_field obj ~verb ~field:"home" in
    let* rb_benchmark = str_field obj ~verb ~field:"benchmark" in
    Ok (Register_binary { rb_home; rb_benchmark })
  | "update-evidence" ->
    let* ue_site = str_field obj ~verb ~field:"site" in
    let* ue_action = parse_action obj in
    Ok (Update_evidence { ue_site; ue_action })
  | "snapshot" ->
    let* sf_out = opt_str_field obj ~field:"out" in
    Ok (Snapshot_fleet { sf_out })
  | "crosscheck" -> Ok Crosscheck
  | "stats" -> Ok Stats
  | "shutdown" -> Ok Shutdown
  | other -> Error (Unknown_verb other)

let parse line =
  if String.length line > max_line_bytes then
    Error (Oversized (String.length line))
  else
    let trimmed = String.trim line in
    if trimmed = "" then Error Empty_line
    else
      match Json.parse trimmed with
      | Error e -> Error (Malformed e)
      | Ok (Json.Obj _ as obj) -> (
        match Json.member "verb" obj with
        | Some (Json.Str verb) -> parse_verb verb obj
        | Some _ -> Error (Bad_field { field = "verb"; expected = "string" })
        | None -> Error Missing_verb)
      | Ok _ -> Error Not_an_object

(* -- error rendering --------------------------------------------------- *)

let error_code = function
  | Empty_line -> "empty-line"
  | Oversized _ -> "oversized"
  | Malformed _ -> "malformed"
  | Not_an_object -> "not-an-object"
  | Missing_verb -> "missing-verb"
  | Unknown_verb _ -> "unknown-verb"
  | Missing_field _ -> "missing-field"
  | Bad_field _ -> "bad-field"

let error_detail = function
  | Empty_line -> "blank request line"
  | Oversized n ->
    Printf.sprintf "request line is %d bytes; limit is %d" n max_line_bytes
  | Malformed e -> e
  | Not_an_object -> "request is not a JSON object"
  | Missing_verb -> "request has no \"verb\" field"
  | Unknown_verb v -> Printf.sprintf "unknown verb %S" v
  | Missing_field { verb; field } ->
    Printf.sprintf "verb %S requires field %S" verb field
  | Bad_field { field; expected } ->
    Printf.sprintf "field %S must be %s" field expected

let error_response e =
  Json.render
    (Json.Obj
       [
         ("ok", Json.Bool false);
         ("error", Json.Str (error_code e));
         ("detail", Json.Str (error_detail e));
       ])
