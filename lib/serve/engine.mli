(** The resident fleet engine: one world (sites, binaries, verdict
    table) plus an evidence store, kept warm across requests.
    Transport-free — the daemon and the tests drive it directly.

    Contract (DESIGN §14): [predict] answers from the resident verdict
    table; mutating verbs recapture only the touched owners, diff the
    fresh atoms against the store, map the changed paths through the
    shared determinant<-evidence dependency map
    ([Feam_core.Evidence]), and re-evaluate only the cells those
    changes reach.  All responses are byte-deterministic for a given
    store state. *)

type t

(** Build a resident world and evaluate its baseline verdict table.
    [specs]/[benchmarks] default to the drift harness's reduced
    two-site world; the CLI passes the full Table II fleet under
    [--full].  [clock] feeds only the [serve.query_ns] histogram and
    defaults to the fixed zero clock, keeping tests deterministic.
    Warms the BDC describe memo for the engine's lifetime. *)
val create :
  ?specs:Feam_evalharness.Sites.spec list ->
  ?benchmarks:Feam_suites.Benchmark.t list ->
  ?clock:Feam_obs.Clock.t ->
  seed:int ->
  unit ->
  t

(** Release the describe memo. *)
val close : t -> unit

val resident_cells : t -> int

(** Mutation count: 0 at baseline, +1 per accepted state change. *)
val epoch : t -> int

(** Serve one parsed request; returns the rendered response line
    (no trailing newline).  [write_file] receives the epoch document
    when a [snapshot] request names an [out] path; the default writes
    to the filesystem. *)
val handle :
  ?write_file:(string -> string -> unit) -> t -> Protocol.request -> string

(** The resident fleet as a drift epoch snapshot. *)
val snapshot : t -> Feam_drift.Snapshot.t

(** Byte-identity of the resident verdict table against a cold full
    prediction pass over the same fleet. *)
val crosscheck_matches : t -> bool
