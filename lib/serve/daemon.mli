(** The daemon's transport layer: a signal-aware request loop over any
    line source/sink, with stdio, unix-socket and TCP bindings.

    SIGINT/SIGTERM drain rather than kill: the in-flight request
    completes and its response is written, then the loop exits and the
    idempotent [Feam_obs.flush] hooks run, so trace and journal sinks
    are never truncated. *)

type outcome = {
  served : int;  (** requests answered (including error responses) *)
  parse_errors : int;
  shutdown : bool;  (** a shutdown verb was served *)
  interrupted : bool;  (** the stop flag ended the loop *)
}

(** True once a signal (or {!request_stop}) asked the loop to drain. *)
val stop_requested : unit -> bool

(** Ask the loop to drain, as the signal handlers do. *)
val request_stop : unit -> unit

(** Run [f] with SIGINT/SIGTERM bound to {!request_stop}, restoring the
    previous handlers afterwards.  Resets the stop flag on entry. *)
val with_signals : (unit -> 'a) -> 'a

(** The transport-free loop: read lines from [next] until it returns
    [None], a shutdown verb is served, or the stop flag is raised;
    write one response line (newline included) per request via [write].
    Journals each exchange through the flight recorder when enabled,
    and flushes every buffered sink on exit.  [on_request] runs after a
    line is read, before it is handled — the kill-mid-request tests
    hook it.  Expects signal handlers to be installed by the caller
    ({!with_signals}); the [run_*] bindings below do both. *)
val serve_lines :
  ?on_request:(string -> unit) ->
  Engine.t ->
  next:(unit -> string option) ->
  write:(string -> unit) ->
  outcome

(** Serve stdin/stdout — the deterministic transport CI replays. *)
val run_stdio : Engine.t -> outcome

(** Serve a unix domain socket at [path], one client at a time.
    Removes a stale socket file first and unlinks it on exit. *)
val run_unix_socket : Engine.t -> string -> outcome

(** Serve TCP on loopback. *)
val run_tcp : Engine.t -> int -> outcome
