(* The resident fleet engine: the daemon's state and request
   semantics, transport-free so tests drive it directly.

   One world — sites, compiled test binaries, the migration matrix's
   verdict table — stays resident across requests, together with an
   evidence store ([Feam_core.Evidence.Store]) holding every owner's
   current atoms.  `predict` is a table lookup.  Mutating verbs
   recapture only the touched owners, diff the fresh atoms against the
   store, map the changed paths through the shared determinant<-
   evidence dependency map, and re-evaluate only the cells those
   changes reach ([Invalidate.merge] carries every untouched verdict
   forward) — the same contract the drift observatory applies between
   epochs, here applied between requests.

   Every response is byte-deterministic for a given store state: no
   timestamps, no table-iteration order, no wall-clock anywhere in a
   response body (the query-latency histogram is metrics-only). *)

module Json = Feam_util.Json
module Evidence = Feam_core.Evidence
module Site = Feam_sysmodel.Site
module Vfs = Feam_sysmodel.Vfs
module Snapshot = Feam_drift.Snapshot
module Invalidate = Feam_drift.Invalidate
module Metrics = Feam_obs.Metrics
module Driftrun = Feam_evalharness.Driftrun
module Sites = Feam_evalharness.Sites
module Testset = Feam_evalharness.Testset
module Params = Feam_evalharness.Params
module Benchmark = Feam_suites.Benchmark

type t = {
  params : Params.t;
  seed : int;
  clock : Feam_obs.Clock.t;
  store : Evidence.Store.t;
  index : (string * string, Snapshot.cell) Hashtbl.t;
  mutable sites : Site.t list;
  mutable binaries : Testset.binary list;
  mutable cells : Snapshot.cell list;  (* matrix enumeration order *)
  mutable epoch : int;  (* bumped by every accepted mutation *)
  mutable requests : int;
  mutable reevaluated : int;  (* incremental evaluations since start *)
}

(* -- evidence capture into the store ----------------------------------- *)

let atom_pairs atoms = List.map (fun (_, p, v) -> (p, v)) atoms

let store_site t site =
  let s = Driftrun.capture_site site in
  Evidence.Store.replace t.store
    (Evidence.Site_owner s.Snapshot.ss_name)
    (atom_pairs (Snapshot.site_atoms s))

let store_binary t (binary : Testset.binary) =
  let b = Driftrun.capture_binary binary in
  Evidence.Store.replace t.store
    (Evidence.Binary_owner b.Snapshot.bs_id)
    (atom_pairs (Snapshot.binary_atoms b))

(* -- bookkeeping ------------------------------------------------------- *)

let reindex t =
  Hashtbl.reset t.index;
  List.iter
    (fun (c : Snapshot.cell) ->
      Hashtbl.replace t.index (c.Snapshot.cl_binary, c.Snapshot.cl_target) c)
    t.cells;
  Metrics.set_gauge "serve.resident_cells"
    (float_of_int (List.length t.cells))

let count_reevaluated t n =
  t.reevaluated <- t.reevaluated + n;
  Metrics.incr "serve.cells_reevaluated" ~by:n;
  Metrics.incr "serve.cells_reevaluated_total" ~by:n

(* -- construction ------------------------------------------------------ *)

let create ?specs ?benchmarks ?(clock = Feam_obs.Clock.fixed ()) ~seed () =
  let specs = Option.value specs ~default:(Driftrun.small_specs ()) in
  let benchmarks =
    Option.value benchmarks ~default:(Driftrun.small_benchmarks ())
  in
  let params = { Params.default with Params.seed } in
  (* The BDC describe memo stays warm for the engine's lifetime: batch
     queries and re-evaluations share one description cache. *)
  Feam_core.Bdc.set_describe_memo ();
  let sites, binaries = Driftrun.build_world params specs benchmarks [] in
  let cells =
    List.map
      (fun (b, target) -> Driftrun.predict_cell b target)
      (Driftrun.all_cells sites binaries)
  in
  let t =
    {
      params;
      seed;
      clock;
      store = Evidence.Store.create ();
      index = Hashtbl.create 1024;
      sites;
      binaries;
      cells;
      epoch = 0;
      requests = 0;
      reevaluated = 0;
    }
  in
  List.iter (fun site -> ignore (store_site t site)) sites;
  List.iter (fun b -> ignore (store_binary t b)) binaries;
  reindex t;
  (* Register the exported counters at zero so the Prometheus expo
     lists them before the first request arrives. *)
  Metrics.incr "serve.requests_total" ~by:0;
  Metrics.incr "serve.cells_reevaluated_total" ~by:0;
  t

let close _t = Feam_core.Bdc.clear_describe_memo ()

let resident_cells t = List.length t.cells

let epoch t = t.epoch

(* -- incremental re-evaluation ----------------------------------------- *)

(* Cells the changed atoms reach: a site atom invalidates the cells
   targeting that site, a binary atom the cells of that binary —
   verdict-inert changes (empty determinant list) reach nothing. *)
let affected_cells t (changes : Evidence.Store.change list) =
  let owners =
    changes
    |> List.filter (fun c -> c.Evidence.Store.ev_determinants <> [])
    |> List.map (fun c -> c.Evidence.Store.ev_owner)
    |> List.sort_uniq Evidence.compare_owner
  in
  if owners = [] then []
  else
    List.filter
      (fun (c : Snapshot.cell) ->
        List.exists
          (function
            | Evidence.Site_owner s -> c.Snapshot.cl_target = s
            | Evidence.Binary_owner b -> c.Snapshot.cl_binary = b)
          owners)
      t.cells

let reevaluate t cells =
  List.map
    (fun (c : Snapshot.cell) ->
      let binary =
        List.find
          (fun (b : Testset.binary) -> b.Testset.id = c.Snapshot.cl_binary)
          t.binaries
      in
      Driftrun.predict_cell binary (Sites.find_by_name t.sites c.Snapshot.cl_target))
    cells

(* Extend the matrix after a registration: evaluate the pairs the new
   owners created, keep the resident table in enumeration order. *)
let extend_matrix t =
  let pairs = Driftrun.all_cells t.sites t.binaries in
  let fresh =
    List.filter
      (fun ((b : Testset.binary), target) ->
        not (Hashtbl.mem t.index (b.Testset.id, Site.name target)))
      pairs
  in
  let evaluated =
    List.map (fun (b, target) -> Driftrun.predict_cell b target) fresh
  in
  let by_key = Hashtbl.create 1024 in
  List.iter
    (fun (c : Snapshot.cell) ->
      Hashtbl.replace by_key (c.Snapshot.cl_binary, c.Snapshot.cl_target) c)
    (t.cells @ evaluated);
  t.cells <-
    List.map
      (fun ((b : Testset.binary), target) ->
        Hashtbl.find by_key (b.Testset.id, Site.name target))
      pairs;
  reindex t;
  count_reevaluated t (List.length fresh);
  List.length fresh

(* -- response building ------------------------------------------------- *)

let strs l = Json.List (List.map (fun s -> Json.Str s) l)

let ok_fields verb fields = ("ok", Json.Bool true) :: ("verb", Json.Str verb) :: fields

let ok verb fields = Json.render (Json.Obj (ok_fields verb fields))

let err ?(fields = []) code detail =
  Json.render
    (Json.Obj
       (("ok", Json.Bool false)
        :: ("error", Json.Str code)
        :: ("detail", Json.Str detail)
        :: fields))

let find_site t name = List.find_opt (fun s -> Site.name s = name) t.sites

let find_binary t id =
  List.find_opt (fun (b : Testset.binary) -> b.Testset.id = id) t.binaries

(* One query's result as response fields — shared by predict and the
   per-entry objects of predict-batch. *)
let query_fields t (q : Protocol.query) =
  match Hashtbl.find_opt t.index (q.Protocol.q_binary, q.Protocol.q_target) with
  | Some cell ->
    Ok
      [
        ("binary", Json.Str cell.Snapshot.cl_binary);
        ("target", Json.Str cell.Snapshot.cl_target);
        ("basic", Json.Bool cell.Snapshot.cl_basic);
        ("basic_reasons", strs cell.Snapshot.cl_basic_reasons);
        ("extended", Json.Bool cell.Snapshot.cl_extended);
        ("extended_reasons", strs cell.Snapshot.cl_extended_reasons);
        ("staged", strs cell.Snapshot.cl_staged);
        ("epoch", Json.Int t.epoch);
      ]
  | None ->
    let ctx =
      [
        ("binary", Json.Str q.Protocol.q_binary);
        ("target", Json.Str q.Protocol.q_target);
      ]
    in
    Error
      (match (find_binary t q.Protocol.q_binary, find_site t q.Protocol.q_target) with
      | None, _ -> ("unknown-binary", "binary is not resident", ctx)
      | _, None -> ("unknown-target", "target site is not resident", ctx)
      | Some b, Some _ when Site.name b.Testset.home = q.Protocol.q_target ->
        ("no-cell", "binary is homed at the target site", ctx)
      | Some _, Some _ ->
        ("no-cell", "target has no matching MPI implementation", ctx))

let predict t q =
  match query_fields t q with
  | Ok fields -> ok "predict" fields
  | Error (code, detail, ctx) -> err code detail ~fields:ctx

let predict_batch t qs =
  let results =
    List.map
      (fun q ->
        match query_fields t q with
        | Ok fields -> Json.Obj (("ok", Json.Bool true) :: fields)
        | Error (code, detail, ctx) ->
          Json.Obj
            (("ok", Json.Bool false)
             :: ("error", Json.Str code)
             :: ("detail", Json.Str detail)
             :: ctx))
      qs
  in
  ok "predict-batch"
    [ ("count", Json.Int (List.length results)); ("results", Json.List results) ]

(* -- mutating verbs ---------------------------------------------------- *)

let flip_json (f : Invalidate.flip) =
  Json.Obj
    [
      ("cell", Json.Str (Invalidate.cell_id_key f.Invalidate.fp_cell));
      ("before", Json.Bool f.Invalidate.fp_before);
      ("after", Json.Bool f.Invalidate.fp_after);
    ]

let update_evidence t site_name action =
  match find_site t site_name with
  | None -> err "unknown-site" "site is not resident"
  | Some site ->
    (match action with
    | Protocol.Stale_ld_cache -> Site.set_ld_cache_current site false
    | Protocol.Fresh_ld_cache -> Site.set_ld_cache_current site true
    | Protocol.Remove_lib name ->
      List.iter
        (Vfs.remove (Site.vfs site))
        (Vfs.find_by_basename (Site.vfs site) (fun b -> b = name)));
    (* A home-site change surfaces through its binaries' bundles, so
       recapture them along with the site itself. *)
    let changes =
      store_site t site
      @ List.concat_map
          (fun (b : Testset.binary) ->
            if Site.name b.Testset.home = site_name then store_binary t b
            else [])
          t.binaries
    in
    if changes = [] then
      ok "update-evidence"
        [
          ("site", Json.Str site_name);
          ("action", Json.Str (Protocol.action_to_string action));
          ("changed_atoms", Json.Int 0);
          ("cells_reevaluated", Json.Int 0);
          ("cells_total", Json.Int (List.length t.cells));
          ("flips", Json.List []);
          ("epoch", Json.Int t.epoch);
        ]
    else begin
      let affected = affected_cells t changes in
      let reevaluated = reevaluate t affected in
      let before = t.cells in
      t.cells <- Invalidate.merge ~base:before ~reevaluated;
      let flips = Invalidate.flips ~before ~after:t.cells in
      reindex t;
      count_reevaluated t (List.length reevaluated);
      t.epoch <- t.epoch + 1;
      ok "update-evidence"
        [
          ("site", Json.Str site_name);
          ("action", Json.Str (Protocol.action_to_string action));
          ("changed_atoms", Json.Int (List.length changes));
          ("cells_reevaluated", Json.Int (List.length reevaluated));
          ("cells_total", Json.Int (List.length t.cells));
          ("flips", Json.List (List.map flip_json flips));
          ("epoch", Json.Int t.epoch);
        ]
    end

let register_site t name =
  if find_site t name <> None then err "site-resident" "site is already resident"
  else
    match
      List.find_opt (fun (sp : Sites.spec) -> sp.Sites.site_name = name) Sites.specs
    with
    | None -> err "unknown-site-spec" "no such spec in the site catalog"
    | Some spec ->
      let site =
        match Sites.build_specs t.params [ spec ] with
        | [ s ] -> s
        | _ -> assert false
      in
      t.sites <- t.sites @ [ site ];
      ignore (store_site t site);
      let evaluated = extend_matrix t in
      t.epoch <- t.epoch + 1;
      ok "register-site"
        [
          ("site", Json.Str name);
          ("cells_evaluated", Json.Int evaluated);
          ("cells_total", Json.Int (List.length t.cells));
          ("epoch", Json.Int t.epoch);
        ]

let all_benchmarks () = Feam_suites.Npb.all @ Feam_suites.Specmpi.all

let register_binary t ~home ~benchmark =
  match find_site t home with
  | None -> err "unknown-site" "home site is not resident"
  | Some site -> (
    match
      List.find_opt
        (fun (b : Benchmark.t) -> b.Benchmark.bench_name = benchmark)
        (all_benchmarks ())
    with
    | None -> err "unknown-benchmark" "no such benchmark in the corpus"
    | Some bench ->
      let built = Testset.build t.params [ site ] [ bench ] in
      let fresh =
        List.filter
          (fun (b : Testset.binary) -> find_binary t b.Testset.id = None)
          built
      in
      if built = [] then
        err "nothing-built" "benchmark compiled on no stack at the home site"
      else if fresh = [] then
        err "binary-resident" "every built binary is already resident"
      else begin
        t.binaries <- t.binaries @ fresh;
        List.iter (fun b -> ignore (store_binary t b)) fresh;
        let evaluated = extend_matrix t in
        t.epoch <- t.epoch + 1;
        ok "register-binary"
          [
            ("home", Json.Str home);
            ("benchmark", Json.Str benchmark);
            ( "added",
              strs
                (List.sort String.compare
                   (List.map (fun (b : Testset.binary) -> b.Testset.id) fresh))
            );
            ("cells_evaluated", Json.Int evaluated);
            ("cells_total", Json.Int (List.length t.cells));
            ("epoch", Json.Int t.epoch);
          ]
      end)

(* -- snapshot / crosscheck / stats ------------------------------------- *)

let snapshot t =
  Driftrun.snapshot_of_world ~epoch:t.epoch ~seed:t.seed ~label:"serve"
    t.sites t.binaries ~cells:t.cells

let snapshot_fleet t ~out ~write_file =
  let snap = snapshot t in
  (match out with
  | Some path -> write_file path (Snapshot.to_jsonl snap)
  | None -> ());
  ok "snapshot"
    [
      ("epoch", Json.Int t.epoch);
      ("hash", Json.Str (Snapshot.hash snap));
      ("sites", Json.Int (List.length t.sites));
      ("binaries", Json.Int (List.length t.binaries));
      ("cells", Json.Int (List.length t.cells));
      ("ready", Json.Int (Snapshot.ready_cells snap));
      ("out", match out with Some p -> Json.Str p | None -> Json.Null);
    ]

(* The drift harness's byte-identity contract, live: a cold full
   prediction pass over the resident world must serialize identically
   to the incrementally maintained table. *)
let crosscheck_matches t =
  let full =
    List.map
      (fun (b, target) -> Driftrun.predict_cell b target)
      (Driftrun.all_cells t.sites t.binaries)
  in
  String.equal
    (Driftrun.cells_doc ~epoch:t.epoch ~seed:t.seed t.cells)
    (Driftrun.cells_doc ~epoch:t.epoch ~seed:t.seed full)

let crosscheck t =
  ok "crosscheck"
    [
      ("cells", Json.Int (List.length t.cells));
      ("matches", Json.Bool (crosscheck_matches t));
      ("epoch", Json.Int t.epoch);
    ]

let stats t =
  ok "stats"
    [
      ("epoch", Json.Int t.epoch);
      ("sites", Json.Int (List.length t.sites));
      ("binaries", Json.Int (List.length t.binaries));
      ("resident_cells", Json.Int (List.length t.cells));
      ("ready_cells", Json.Int (List.length (List.filter (fun (c : Snapshot.cell) -> c.Snapshot.cl_extended) t.cells)));
      ("resident_atoms", Json.Int (Evidence.Store.size t.store));
      ("requests", Json.Int t.requests);
      ("cells_reevaluated", Json.Int t.reevaluated);
    ]

(* -- dispatch ---------------------------------------------------------- *)

let default_write_file path doc =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc doc)

let dispatch t ~write_file (req : Protocol.request) =
  match req with
  | Protocol.Predict q -> predict t q
  | Protocol.Predict_batch qs -> predict_batch t qs
  | Protocol.Register_site name -> register_site t name
  | Protocol.Register_binary { rb_home; rb_benchmark } ->
    register_binary t ~home:rb_home ~benchmark:rb_benchmark
  | Protocol.Update_evidence { ue_site; ue_action } ->
    update_evidence t ue_site ue_action
  | Protocol.Snapshot_fleet { sf_out } ->
    snapshot_fleet t ~out:sf_out ~write_file
  | Protocol.Crosscheck -> crosscheck t
  | Protocol.Stats -> stats t
  | Protocol.Shutdown -> ok "shutdown" [ ("requests", Json.Int t.requests) ]

let handle ?(write_file = default_write_file) t req =
  t.requests <- t.requests + 1;
  Metrics.incr "serve.requests"
    ~labels:[ ("verb", Protocol.verb_of_request req) ];
  Metrics.incr "serve.requests_total";
  let t0 = t.clock () in
  let response = dispatch t ~write_file req in
  Metrics.observe "serve.query_ns"
    (Int64.to_float (Int64.sub (t.clock ()) t0));
  response
