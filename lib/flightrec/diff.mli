(** Cross-run prediction diffing: align two journals by determinant
    and pin which evidence atom changed and which determinant flipped
    the verdict. *)

type change = {
  path : string;  (** dotted path of the evidence atom *)
  a : string option;  (** value in the first journal, if present *)
  b : string option;  (** value in the second journal, if present *)
}

type determinant_diff = {
  dd_determinant : string;
  dd_verdict_a : string option;
  dd_verdict_b : string option;
  dd_flipped : bool;  (** the determinant's verdict changed *)
  dd_changes : change list;  (** evidence atoms that moved *)
}

type t = {
  run_changes : change list;
  description_changes : change list;
  discovery_changes : change list;
  determinants : determinant_diff list;
      (** only determinants with a flip or evidence change *)
  report_a : string option;  (** overall verdict, "ready"/"not ready" *)
  report_b : string option;
}

val compare : Journal.t -> Journal.t -> t
val is_empty : t -> bool
val report_flipped : t -> bool
val render_text : t -> string
val to_json : t -> Feam_util.Json.t
