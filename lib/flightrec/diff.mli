(** Cross-run prediction diffing: align two journals by determinant
    and pin which evidence atom changed and which determinant flipped
    the verdict. *)

type change = {
  path : string;  (** dotted path of the evidence atom *)
  a : string option;  (** value in the first journal, if present *)
  b : string option;  (** value in the second journal, if present *)
}

type determinant_diff = {
  dd_determinant : string;
  dd_verdict_a : string option;
  dd_verdict_b : string option;
  dd_flipped : bool;  (** the determinant's verdict changed *)
  dd_changes : change list;  (** evidence atoms that moved *)
}

type t = {
  run_changes : change list;
  description_changes : change list;
  discovery_changes : change list;
  determinants : determinant_diff list;
      (** only determinants with a flip or evidence change *)
  report_a : string option;  (** overall verdict, "ready"/"not ready" *)
  report_b : string option;
}

val compare : Journal.t -> Journal.t -> t

(** The explicitly-empty diff (no changes, no verdicts): the value a
    journal compared against itself reduces to, modulo the (equal)
    report verdicts. *)
val empty : t

val is_empty : t -> bool
val report_flipped : t -> bool

(** A side that failed to parse: truncated bodies, non-journal
    documents, schema mismatches.  Never an exception. *)
type journal_error = { je_side : [ `A | `B ]; je_reason : string }

val journal_error_to_string : journal_error -> string

(** Parse both journal bodies and compare them.  Degrades to a typed
    error naming the side whose body is truncated, not a journal, or
    carries a newer schema than this build understands. *)
val of_strings : a:string -> b:string -> (t, journal_error) result

(** Flatten a JSON document to dotted-path evidence atoms, in document
    order (lists become [path[i]]).  The diff's own vocabulary, exposed
    for layers that diff other evidence documents (the drift
    observatory's epoch snapshots). *)
val atoms : Feam_util.Json.t -> (string * string) list

(** Atom-level diff of two flattened documents, in canonical
    (path-sorted) order: atom ordering on either side never affects the
    output. *)
val diff_atoms :
  (string * string) list -> (string * string) list -> change list

val render_text : t -> string
val to_json : t -> Feam_util.Json.t
