(* Feam_flightrec — the flight recorder: an evidence journal for every
   pipeline run, deterministic replay from recorded evidence, and
   cross-run prediction diffing.

   Where `feam.obs` says what FEAM did and how long it took, this
   layer says *why*: every determinant verdict is journaled with the
   concrete evidence consulted (the objdump/readelf/ldd facts from the
   BDC, the EDC environment facts, provider positions from resolution
   and the symbol checker), linked to the obs span that produced it.
   The journal carries no timestamps, so identical inputs produce
   byte-identical journals — the property `feam replay` leans on to be
   a regression oracle and `feam diff` leans on to be noise-free. *)

module Recorder = Recorder
module Journal = Journal
module Diff = Diff
