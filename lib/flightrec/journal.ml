(* Parsed journals: the read side of the flight recorder.  A journal
   is a JSONL document — a header line identifying the schema, then
   one record per line.  Unknown record types are preserved verbatim
   so newer journals degrade gracefully under older readers. *)

module Json = Feam_util.Json

type record = {
  seq : int;
  span : int option;
  kind : string;
  fields : (string * Json.t) list; (* everything but type/seq/span *)
}

type t = { schema : int; tool : string; records : record list }

let parse_record line_no json =
  match json with
  | Json.Obj fields ->
    let kind =
      match List.assoc_opt "type" fields with
      | Some (Json.Str s) -> Ok s
      | _ -> Error (Printf.sprintf "line %d: record has no type" line_no)
    in
    let seq =
      match List.assoc_opt "seq" fields with
      | Some (Json.Int n) -> Ok n
      | _ -> Error (Printf.sprintf "line %d: record has no seq" line_no)
    in
    let span =
      match List.assoc_opt "span" fields with
      | Some (Json.Int n) -> Some n
      | _ -> None
    in
    (match (kind, seq) with
    | Ok kind, Ok seq ->
      let fields =
        List.filter
          (fun (k, _) -> k <> "type" && k <> "seq" && k <> "span")
          fields
      in
      Ok { seq; span; kind; fields }
    | (Error _ as e), _ | _, (Error _ as e) -> e)
  | _ -> Error (Printf.sprintf "line %d: record is not an object" line_no)

let parse body =
  let lines =
    String.split_on_char '\n' body
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "empty journal"
  | header :: rest -> (
    match Json.parse header with
    | Error e -> Error ("journal header: " ^ e)
    | Ok h -> (
      match Json.member "type" h with
      | Some (Json.Str "journal") -> (
        let schema =
          match Json.member "schema" h with
          | Some (Json.Int n) -> Some n
          | _ -> None
        in
        match schema with
        | None -> Error "journal header: missing schema version"
        | Some schema when schema > Recorder.schema_version ->
          Error
            (Printf.sprintf
               "journal schema %d is newer than this build understands (%d)"
               schema Recorder.schema_version)
        | Some schema ->
          let tool =
            match Json.member "tool" h with
            | Some (Json.Str s) -> s
            | _ -> ""
          in
          let rec records line_no acc = function
            | [] -> Ok (List.rev acc)
            | line :: rest -> (
              match Json.parse line with
              | Error e ->
                Error (Printf.sprintf "line %d: %s" line_no e)
              | Ok json -> (
                match parse_record line_no json with
                | Error _ as e -> e
                | Ok r -> records (line_no + 1) (r :: acc) rest))
          in
          (match records 2 [] rest with
          | Error _ as e -> e
          | Ok records -> Ok { schema; tool; records }))
      | _ -> Error "not a feam journal (missing {\"type\":\"journal\"} header)"))

(* Accessors. *)

let find_all ~kind t = List.filter (fun r -> r.kind = kind) t.records

let find ~kind t = List.find_opt (fun r -> r.kind = kind) t.records

let last ~kind t =
  List.fold_left
    (fun acc r -> if r.kind = kind then Some r else acc)
    None t.records

let field key r = List.assoc_opt key r.fields

let str_field key r =
  match field key r with Some (Json.Str s) -> Some s | _ -> None

(* Decision records for a determinant, in journal order; the last one
   is the verdict that stood. *)
let decisions ~determinant t =
  find_all ~kind:"decision" t
  |> List.filter (fun r -> str_field "determinant" r = Some determinant)

let last_decision ~determinant t =
  match List.rev (decisions ~determinant t) with [] -> None | r :: _ -> Some r

(* The [data] of the last payload record of the given kind. *)
let payload ~kind t =
  find_all ~kind:"payload" t
  |> List.filter (fun r -> str_field "kind" r = Some kind)
  |> List.rev
  |> function
  | [] -> None
  | r :: _ -> field "data" r
