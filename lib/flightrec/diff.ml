(* Cross-run prediction diffing: align two journals by determinant and
   pin exactly which evidence atom changed and which determinant
   flipped the verdict.

   Evidence objects are flattened to dotted-path atoms
   (e.g. [target.glibc.version = "2.3.4"]) so the diff names the one
   fact that moved instead of dumping whole JSON subtrees. *)

module Json = Feam_util.Json

type change = { path : string; a : string option; b : string option }

type determinant_diff = {
  dd_determinant : string;
  dd_verdict_a : string option;
  dd_verdict_b : string option;
  dd_flipped : bool;
  dd_changes : change list;
}

type t = {
  run_changes : change list;
  description_changes : change list;
  discovery_changes : change list;
  determinants : determinant_diff list;
  report_a : string option; (* "ready" / "not ready" *)
  report_b : string option;
}

let report_flipped t =
  match (t.report_a, t.report_b) with
  | Some a, Some b -> a <> b
  | _ -> false

let is_empty t =
  t.run_changes = [] && t.description_changes = []
  && t.discovery_changes = [] && t.determinants = []
  && not (report_flipped t)

(* The explicitly-empty diff: what comparing a journal against itself
   yields.  Two identical journals must compare equal to this modulo
   their (equal) report verdicts. *)
let empty =
  {
    run_changes = [];
    description_changes = [];
    discovery_changes = [];
    determinants = [];
    report_a = None;
    report_b = None;
  }

(* --- flattening ------------------------------------------------------ *)

let atom = function
  | Json.Str s -> s
  | other -> Json.render other

let rec flatten prefix json acc =
  let join k = if prefix = "" then k else prefix ^ "." ^ k in
  match json with
  | Json.Obj fields ->
    List.fold_left (fun acc (k, v) -> flatten (join k) v acc) acc fields
  | Json.List items ->
    let _, acc =
      List.fold_left
        (fun (i, acc) v ->
          (i + 1, flatten (Printf.sprintf "%s[%d]" prefix i) v acc))
        (0, acc) items
    in
    acc
  | scalar -> (prefix, atom scalar) :: acc

let flatten json = List.rev (flatten "" json [])

let atoms = flatten

(* Changed paths in canonical (path-sorted) order: value lookup is by
   path, and the output is sorted, so the order in which either side
   listed its evidence atoms never shows through in the diff. *)
let diff_atoms a b =
  let changes =
    List.filter_map
      (fun (path, va) ->
        match List.assoc_opt path b with
        | Some vb when vb = va -> None
        | Some vb -> Some { path; a = Some va; b = Some vb }
        | None -> Some { path; a = Some va; b = None })
      a
  in
  let added =
    List.filter_map
      (fun (path, vb) ->
        if List.mem_assoc path a then None
        else Some { path; a = None; b = Some vb })
      b
  in
  List.sort (fun x y -> String.compare x.path y.path) (changes @ added)

let diff_json a b =
  let fl = function None -> [] | Some j -> flatten j in
  diff_atoms (fl a) (fl b)

(* --- journal alignment ----------------------------------------------- *)

let record_fields_json = function
  | None -> None
  | Some r -> Some (Json.Obj r.Journal.fields)

let determinant_names ja jb =
  let names_of j =
    List.filter_map
      (fun r ->
        if r.Journal.kind = "decision" then Journal.str_field "determinant" r
        else None)
      j.Journal.records
  in
  let seen = Hashtbl.create 8 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n then false
      else begin
        Hashtbl.add seen n ();
        true
      end)
    (names_of ja @ names_of jb)

let report_verdict j =
  match Journal.last ~kind:"report" j with
  | None -> None
  | Some r -> (
    match Journal.field "ready" r with
    | Some (Json.Bool true) -> Some "ready"
    | Some (Json.Bool false) -> Some "not ready"
    | _ -> None)

let compare ja jb =
  let run_changes =
    diff_json
      (record_fields_json (Journal.last ~kind:"run" ja))
      (record_fields_json (Journal.last ~kind:"run" jb))
  in
  let payload kind j = Journal.payload ~kind j in
  let description_changes =
    diff_json (payload "description" ja) (payload "description" jb)
  in
  let discovery_changes =
    diff_json (payload "discovery" ja) (payload "discovery" jb)
  in
  let determinants =
    List.filter_map
      (fun name ->
        let da = Journal.last_decision ~determinant:name ja in
        let db = Journal.last_decision ~determinant:name jb in
        let verdict = function
          | None -> None
          | Some r -> Journal.str_field "verdict" r
        in
        let evidence = function
          | None -> None
          | Some r -> Journal.field "evidence" r
        in
        let dd_verdict_a = verdict da and dd_verdict_b = verdict db in
        let dd_changes = diff_json (evidence da) (evidence db) in
        let dd_flipped = dd_verdict_a <> dd_verdict_b in
        if dd_flipped || dd_changes <> [] then
          Some
            { dd_determinant = name; dd_verdict_a; dd_verdict_b; dd_flipped;
              dd_changes }
        else None)
      (determinant_names ja jb)
  in
  {
    run_changes;
    description_changes;
    discovery_changes;
    determinants;
    report_a = report_verdict ja;
    report_b = report_verdict jb;
  }

(* --- typed parse front-end ------------------------------------------- *)

(* Diffing unparsed journal bodies: a truncated or schema-mismatched
   journal degrades to a typed error naming the side that failed, never
   an exception.  [Journal.parse] already rejects non-journal documents
   and schemas newer than the recorder's. *)
type journal_error = { je_side : [ `A | `B ]; je_reason : string }

let journal_error_to_string e =
  Printf.sprintf "journal %s: %s"
    (match e.je_side with `A -> "A" | `B -> "B")
    e.je_reason

let of_strings ~a ~b =
  match Journal.parse a with
  | Error reason -> Error { je_side = `A; je_reason = reason }
  | Ok ja -> (
    match Journal.parse b with
    | Error reason -> Error { je_side = `B; je_reason = reason }
    | Ok jb -> Ok (compare ja jb))

(* --- rendering ------------------------------------------------------- *)

let side = function None -> "(absent)" | Some v -> v

let render_change buf indent c =
  Buffer.add_string buf
    (Printf.sprintf "%s%s: %s -> %s\n" indent c.path (side c.a) (side c.b))

let render_text t =
  if is_empty t then "journal diff: no differences\n"
  else begin
    let buf = Buffer.create 512 in
    let total =
      List.length t.run_changes
      + List.length t.description_changes
      + List.length t.discovery_changes
      + List.fold_left
          (fun acc d -> acc + List.length d.dd_changes)
          0 t.determinants
    in
    Buffer.add_string buf
      (Printf.sprintf "journal diff: %d evidence change%s, %d determinant%s affected\n"
         total
         (if total = 1 then "" else "s")
         (List.length t.determinants)
         (if List.length t.determinants = 1 then "" else "s"));
    (match (t.report_a, t.report_b) with
    | Some a, Some b when a <> b ->
      Buffer.add_string buf
        (Printf.sprintf "verdict: %s -> %s  [FLIPPED]\n" a b)
    | Some a, Some _ ->
      Buffer.add_string buf (Printf.sprintf "verdict: %s (unchanged)\n" a)
    | _ -> ());
    let section name changes =
      if changes <> [] then begin
        Buffer.add_string buf (Printf.sprintf "\n%s:\n" name);
        List.iter (render_change buf "  ") changes
      end
    in
    section "run" t.run_changes;
    section "description" t.description_changes;
    section "discovery" t.discovery_changes;
    List.iter
      (fun d ->
        Buffer.add_string buf
          (Printf.sprintf "\ndeterminant %s: %s -> %s%s\n" d.dd_determinant
             (side d.dd_verdict_a) (side d.dd_verdict_b)
             (if d.dd_flipped then "  [FLIPPED]" else ""));
        List.iter (render_change buf "  ") d.dd_changes)
      t.determinants;
    Buffer.contents buf
  end

let change_to_json c =
  let opt = function None -> Json.Null | Some v -> Json.Str v in
  Json.Obj [ ("path", Json.Str c.path); ("a", opt c.a); ("b", opt c.b) ]

let to_json t =
  let opt = function None -> Json.Null | Some v -> Json.Str v in
  let changes cs = Json.List (List.map change_to_json cs) in
  Json.Obj
    [
      ("identical", Json.Bool (is_empty t));
      ( "verdict",
        Json.Obj
          [
            ("a", opt t.report_a);
            ("b", opt t.report_b);
            ("flipped", Json.Bool (report_flipped t));
          ] );
      ("run", changes t.run_changes);
      ("description", changes t.description_changes);
      ("discovery", changes t.discovery_changes);
      ( "determinants",
        Json.List
          (List.map
             (fun d ->
               Json.Obj
                 [
                   ("determinant", Json.Str d.dd_determinant);
                   ("verdict_a", opt d.dd_verdict_a);
                   ("verdict_b", opt d.dd_verdict_b);
                   ("flipped", Json.Bool d.dd_flipped);
                   ("changes", changes d.dd_changes);
                 ])
             t.determinants) );
    ]
