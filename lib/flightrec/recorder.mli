(** The flight recorder: journals a pipeline run as a structured,
    versioned event log — one JSON object per line, no timestamps, so
    identical inputs yield byte-identical journals.

    A strict no-op until {!configure}, mirroring {!Feam_obs.Trace}. *)

(** Current journal schema version (header field [schema]). *)
val schema_version : int

(** [configure ~tool ~emit ()] turns journaling on.  [emit] receives
    the complete rendered journal at every {!flush}; the recorder also
    registers itself as a {!Feam_obs.on_flush} hook so a single
    [Feam_obs.flush ()] drains trace sink and journal alike. *)
val configure : tool:string -> emit:(string -> unit) -> unit -> unit

val enabled : unit -> bool

(** Append one record of the given type.  The sequence number and the
    innermost open {!Feam_obs.Trace} span id are stamped automatically. *)
val record : ?fields:(string * Feam_util.Json.t) list -> string -> unit

(** A raw fact consulted during discovery (objdump parse, ldd walk,
    environment probe, library location). *)
val evidence :
  stage:string -> kind:string -> (string * Feam_util.Json.t) list -> unit

(** A determinant verdict plus the evidence object that produced it. *)
val decision :
  determinant:string ->
  verdict:string ->
  (string * Feam_util.Json.t) list ->
  unit

(** A full serialized input (description, discovery, config) — the
    material replay reconstructs the run from. *)
val payload : kind:string -> Feam_util.Json.t -> unit

(** One request/response exchange served by the resident prediction
    daemon ([serve.request] record): verb, outcome, and wire sizes. *)
val serve_request :
  verb:string -> ok:bool -> bytes_in:int -> bytes_out:int -> unit

(** Render and hand the journal to [emit].  Idempotent: does nothing
    when no records were added since the last flush. *)
val flush : unit -> unit

(** Back to the pristine no-op state; unregisters the flush hook. *)
val disable : unit -> unit
