(** Parsed journals: the read side of the flight recorder. *)

type record = {
  seq : int;
  span : int option;
  kind : string;
  fields : (string * Feam_util.Json.t) list;
      (** every field except type/seq/span *)
}

type t = { schema : int; tool : string; records : record list }

(** Parse a JSONL journal body.  Rejects non-journal documents and
    schemas newer than {!Recorder.schema_version}; unknown record types
    are preserved. *)
val parse : string -> (t, string) result

val find_all : kind:string -> t -> record list
val find : kind:string -> t -> record option
val last : kind:string -> t -> record option
val field : string -> record -> Feam_util.Json.t option
val str_field : string -> record -> string option

(** Decision records for a determinant, in journal order. *)
val decisions : determinant:string -> t -> record list

(** The decision that stood (the last one journaled). *)
val last_decision : determinant:string -> t -> record option

(** The [data] of the last payload record of the given kind. *)
val payload : kind:string -> t -> Feam_util.Json.t option
