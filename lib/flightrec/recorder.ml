(* The flight recorder: journals a pipeline run as a structured,
   versioned event log.  Every determinant decision, every piece of
   evidence the BDC/EDC consulted, and the final report land here as
   one JSON object per line, linked to the enclosing Feam_obs span.

   Disabled (the default) the recorder is a strict no-op, mirroring
   the tracer: instrumentation left in the pipeline costs nothing and
   changes no output.  The journal deliberately carries *no
   timestamps* — two runs over the same inputs must produce
   byte-identical journals, which is what makes `feam replay` a
   regression oracle and `feam diff` free of noise. *)

module Json = Feam_util.Json

(* Bumped when the record shapes change incompatibly; `feam replay`
   refuses journals from the future. *)
let schema_version = 1

type state = {
  mutable enabled : bool;
  mutable emit : string -> unit;
  mutable tool : string;
  mutable next_seq : int;
  mutable records : Json.t list; (* reversed *)
  mutable flushed_at : int;      (* record count at the last flush *)
}

let st =
  {
    enabled = false;
    emit = ignore;
    tool = "";
    next_seq = 1;
    records = [];
    flushed_at = -1;
  }

let enabled () = st.enabled

let render () =
  let header =
    Json.Obj
      [
        ("type", Json.Str "journal");
        ("schema", Json.Int schema_version);
        ("tool", Json.Str st.tool);
      ]
  in
  String.concat "\n" (List.map Json.render (header :: List.rev st.records))
  ^ "\n"

(* Idempotent: re-renders the whole journal only when records were
   added since the last flush, so the at_exit safety net after an
   explicit flush writes nothing twice. *)
let flush () =
  if st.enabled && List.length st.records <> st.flushed_at then begin
    let body = render () in
    st.flushed_at <- List.length st.records;
    Feam_obs.Metrics.set_gauge "flightrec.journal_bytes"
      (float_of_int (String.length body));
    st.emit body
  end

(* [configure ~tool ~emit ()] turns journaling on.  [emit] receives
   the complete rendered journal at every {!flush} (callers typically
   truncate-and-write a file), and the recorder registers itself with
   {!Feam_obs.flush} so one call drains trace sink and journal alike. *)
let configure ~tool ~emit () =
  st.enabled <- true;
  st.emit <- emit;
  st.tool <- tool;
  st.next_seq <- 1;
  st.records <- [];
  st.flushed_at <- -1;
  Feam_obs.on_flush ~key:"flightrec" flush

let disable () =
  st.enabled <- false;
  st.emit <- ignore;
  st.tool <- "";
  st.next_seq <- 1;
  st.records <- [];
  st.flushed_at <- -1;
  Feam_obs.remove_flush_hook "flightrec"

(* Append one record.  [seq] and the current span id are stamped here;
   everything else is the caller's fields. *)
let record ?(fields = []) kind =
  if st.enabled then begin
    let span =
      match Feam_obs.Trace.current_span_id () with
      | Some id -> Json.Int id
      | None -> Json.Null
    in
    let r =
      Json.Obj
        (("type", Json.Str kind)
        :: ("seq", Json.Int st.next_seq)
        :: ("span", span)
        :: fields)
    in
    st.next_seq <- st.next_seq + 1;
    st.records <- r :: st.records;
    Feam_obs.Metrics.incr ~labels:[ ("type", kind) ] "flightrec.records"
  end

(* A raw fact consulted during discovery — an objdump/readelf/ldd
   parse, an environment probe, a library location. *)
let evidence ~stage ~kind fields =
  record "evidence"
    ~fields:(("stage", Json.Str stage) :: ("kind", Json.Str kind) :: fields)

(* A determinant verdict plus the evidence that produced it. *)
let decision ~determinant ~verdict evidence =
  record "decision"
    ~fields:
      [
        ("determinant", Json.Str determinant);
        ("verdict", Json.Str verdict);
        ("evidence", Json.Obj evidence);
      ]

(* A full serialized input (description, discovery, config) — what
   replay reconstructs the run from. *)
let payload ~kind data =
  record "payload" ~fields:[ ("kind", Json.Str kind); ("data", data) ]

(* One request/response exchange served by the resident prediction
   daemon.  Byte sizes rather than bodies: the response log is its own
   replayable artifact; the journal records that the exchange happened
   and whether it was answered cleanly. *)
let serve_request ~verb ~ok ~bytes_in ~bytes_out =
  record "serve.request"
    ~fields:
      [
        ("verb", Json.Str verb);
        ("ok", Json.Bool ok);
        ("bytes_in", Json.Int bytes_in);
        ("bytes_out", Json.Int bytes_out);
      ]
