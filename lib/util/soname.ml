(* Shared-object naming convention: lib<name>.so.<major>[.<minor>[.<patch>]].
   The prediction model's shared-library determinant (paper §III.D) is built
   on this convention: a library with the same base name and the same major
   version is API compatible. *)

type t = {
  base : string;          (* "libmpi", "libgfortran", ... *)
  version : int list;     (* the trailing dotted numbers; [] for "libfoo.so" *)
}

let make ?(version = []) base =
  if base = "" then invalid_arg "Soname.make: empty base";
  if List.exists (fun c -> c < 0) version then
    invalid_arg "Soname.make: negative version component";
  { base; version }

let base t = t.base
let version t = t.version

let major t =
  match t.version with
  | [] -> None
  | v :: _ -> Some v

let to_string t =
  let suffix = List.map (fun c -> "." ^ string_of_int c) t.version in
  t.base ^ ".so" ^ String.concat "" suffix

(* The link name used at compile time: "libfoo.so". *)
let link_name t = t.base ^ ".so"

(* Why parsing a file name as a soname failed: fuel for the lint rule
   that surfaces malformed library names instead of dropping them. *)
type parse_error =
  | No_so_marker
  | Empty_base
  | Empty_version_component
  | Bad_version_component of string
  | Version_out_of_range of string

let parse_error_to_string = function
  | No_so_marker -> "no \".so\" marker followed by a dotted numeric version"
  | Empty_base -> "empty library base name before \".so\""
  | Empty_version_component -> "empty version component (consecutive dots)"
  | Bad_version_component c ->
    Printf.sprintf "non-numeric version component %S" c
  | Version_out_of_range c ->
    Printf.sprintf "version component %S out of range" c

(* Parse "libfoo.so.1.2.3".  Scans for a ".so" occurrence followed only by
   dotted numbers (or nothing); on failure the error describes the best
   (last) candidate so callers can explain *why* a name is malformed. *)
let of_string_result s =
  let is_digit c = c >= '0' && c <= '9' in
  let n = String.length s in
  (* Diagnose the version suffix after one ".so" candidate. *)
  let suffix_error rest =
    if rest = "" then None
    else if rest.[0] <> '.' then Some (Bad_version_component rest)
    else
      let parts =
        String.split_on_char '.' (String.sub rest 1 (String.length rest - 1))
      in
      List.find_map
        (fun p ->
          if p = "" then Some Empty_version_component
          else if not (String.for_all is_digit p) then
            Some (Bad_version_component p)
          else
            match int_of_string_opt p with
            | Some _ -> None
            | None -> Some (Version_out_of_range p))
        parts
  in
  let rec find_so i err =
    if i + 3 > n then Error (Option.value err ~default:No_so_marker)
    else if String.sub s i 3 = ".so" then
      let rest = String.sub s (i + 3) (n - i - 3) in
      match suffix_error rest with
      | Some e -> find_so (i + 1) (Some e)
      | None ->
        if i = 0 then find_so (i + 1) (Some Empty_base)
        else
          let version =
            if rest = "" then []
            else
              String.split_on_char '.'
                (String.sub rest 1 (String.length rest - 1))
              |> List.map int_of_string
          in
          Ok { base = String.sub s 0 i; version }
    else find_so (i + 1) err
  in
  find_so 0 None

let of_string s = Result.to_option (of_string_result s)

let of_string_exn s =
  match of_string_result s with
  | Ok t -> t
  | Error e ->
    invalid_arg
      (Printf.sprintf "Soname.of_string_exn: %S (%s)" s (parse_error_to_string e))

let equal a b = a.base = b.base && a.version = b.version

let compare a b =
  let c = String.compare a.base b.base in
  if c <> 0 then c else Stdlib.compare a.version b.version

(* [satisfies ~provided ~required]: can a library named [provided] satisfy a
   dependency on [required]?  Same base name and, when the requirement names
   a major version, the same major version (libraries sharing a major
   version are API compatible by convention).  A requirement without a
   version ("libfoo.so") is satisfied by any version of the library. *)
let satisfies ~provided ~required =
  provided.base = required.base
  &&
  match (major required, major provided) with
  | None, _ -> true
  | Some _, None -> false
  | Some r, Some p -> r = p

(* Order candidate providers for one requirement: higher versions first so
   that searches pick the newest compatible copy. *)
let newest_first a b = Stdlib.compare b.version a.version

let pp ppf t = Fmt.string ppf (to_string t)
