(** Shared-object naming convention: [lib<name>.so.<major>[.<minor>...]].

    The shared-library determinant of the prediction model (paper §III.D)
    rests on this convention: libraries with the same base name and major
    version expose compatible APIs. *)

type t

(** [make ?version base] builds a soname; [version] is the trailing dotted
    numbers (default: none, i.e. a bare link name).
    @raise Invalid_argument on an empty base or negative component. *)
val make : ?version:int list -> string -> t

val base : t -> string
val version : t -> int list

(** Leading version component, if the name carries a version. *)
val major : t -> int option

(** Renders "libfoo.so.1.2.3" (or "libfoo.so" for an unversioned name). *)
val to_string : t -> string

(** The compile-time link name: "libfoo.so". *)
val link_name : t -> string

(** Why a file name fails to parse as a soname.  [Version_out_of_range]
    covers all-digit components that overflow [int] (e.g. a 30-digit
    "version"): these are malformed names, not versions. *)
type parse_error =
  | No_so_marker
  | Empty_base
  | Empty_version_component
  | Bad_version_component of string
  | Version_out_of_range of string

val parse_error_to_string : parse_error -> string

(** Parse "libfoo.so.1.2.3"; the error explains what is malformed about
    the name (trailing non-numeric suffixes such as "libfoo.so.1abc",
    empty components such as "libfoo.so..1", a missing base, ...). *)
val of_string_result : string -> (t, parse_error) result

(** [of_string s] is {!of_string_result} with the reason discarded. *)
val of_string : string -> t option

(** @raise Invalid_argument when {!of_string} would return [None]. *)
val of_string_exn : string -> t

val equal : t -> t -> bool
val compare : t -> t -> int

(** [satisfies ~provided ~required] — can a library named [provided]
    satisfy a dependency on [required]?  Requires an equal base name and,
    when [required] is versioned, an equal major version. *)
val satisfies : provided:t -> required:t -> bool

(** Comparison ordering higher versions first. *)
val newest_first : t -> t -> int

val pp : t Fmt.t
