(* The transfer planner: given the objects a migration wants at a
   target site and the per-site possession index, compute the minimal
   ordered set of objects to ship — everything wanted, minus what the
   site already holds, each distinct object once.

   Planning is a pure function ({!compute}) of the want list and a
   possession predicate; the live pipeline and `feam replay` share it,
   so a journaled plan reproduces byte-for-byte from its recorded
   wants (the same move Tec.decide makes for predictions). *)

module Json = Feam_util.Json

type want = { w_label : string; w_key : Chash.t; w_size : int }

let want ~label ~key ~size = { w_label = label; w_key = key; w_size = size }

type item = { it_label : string; it_key : Chash.t; it_size : int }

type t = {
  plan_site : string;
  items : item list; (* ship order: want order, first label wins *)
  hits : int; (* wanted objects the site already held *)
  shipped_bytes : int;
  wanted_bytes : int; (* cost had every want shipped in full *)
}

(* [compute ~site ~possessed wants] — the pure planning core.  Wants
   are deduplicated by key (first label wins, order preserved); a want
   whose key satisfies [possessed] is a hit and ships nothing. *)
let compute ~site ~possessed wants =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let items = ref [] in
  let hits = ref 0 in
  let wanted_bytes = ref 0 in
  List.iter
    (fun w ->
      let hex = Chash.to_hex w.w_key in
      if not (Hashtbl.mem seen hex) then begin
        Hashtbl.add seen hex ();
        wanted_bytes := !wanted_bytes + w.w_size;
        if possessed w.w_key then incr hits
        else
          items :=
            { it_label = w.w_label; it_key = w.w_key; it_size = w.w_size }
            :: !items
      end)
    wants;
  let items = List.rev !items in
  let shipped_bytes =
    List.fold_left (fun acc it -> acc + it.it_size) 0 items
  in
  let plan =
    { plan_site = site; items; hits = !hits; shipped_bytes; wanted_bytes = !wanted_bytes }
  in
  Feam_obs.Metrics.observe "depot.plan_bytes" (float_of_int shipped_bytes);
  Feam_obs.Metrics.incr ~by:plan.hits "depot.plan_hits";
  Feam_obs.Metrics.incr ~by:(List.length items) "depot.plan_misses";
  (* Bytes possession saved: everything wanted but not shipped. *)
  Feam_obs.Metrics.incr
    ~by:(plan.wanted_bytes - shipped_bytes)
    "depot.plan_saved_bytes";
  plan

(* Bytes the legacy path would have shipped: every want in full,
   duplicates included. *)
let legacy_bytes wants =
  List.fold_left (fun acc w -> acc + w.w_size) 0 wants

(* -- per-site possession index ------------------------------------------- *)

module Possession = struct
  type index = (string * string, unit) Hashtbl.t (* (site, key hex) *)

  let create () : index = Hashtbl.create 256

  let mem (t : index) ~site key = Hashtbl.mem t (site, Chash.to_hex key)

  let add (t : index) ~site key = Hashtbl.replace t (site, Chash.to_hex key) ()

  (* Executing a plan makes the site hold every shipped object. *)
  let commit (t : index) plan =
    List.iter (fun it -> add t ~site:plan.plan_site it.it_key) plan.items

  let count (t : index) ~site =
    Hashtbl.fold (fun (s, _) () acc -> if s = site then acc + 1 else acc) t 0
end

(* -- rendering ----------------------------------------------------------- *)

(* Deterministic text: ship order, then one summary line. *)
let render plan =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "transfer plan -> %s\n" plan.plan_site);
  List.iteri
    (fun i it ->
      Buffer.add_string buf
        (Printf.sprintf "  %2d. %s %10d %s\n" (i + 1)
           (Chash.to_hex it.it_key) it.it_size it.it_label))
    plan.items;
  Buffer.add_string buf
    (Printf.sprintf "ship %d objects, %d bytes (%d already at site, %d wanted bytes)\n"
       (List.length plan.items) plan.shipped_bytes plan.hits plan.wanted_bytes);
  Buffer.contents buf

let to_json plan =
  Json.Obj
    [
      ("site", Json.Str plan.plan_site);
      ( "items",
        Json.List
          (List.map
             (fun it ->
               Json.Obj
                 [
                   ("label", Json.Str it.it_label);
                   ("key", Json.Str (Chash.to_hex it.it_key));
                   ("size", Json.Int it.it_size);
                 ])
             plan.items) );
      ("shipped_bytes", Json.Int plan.shipped_bytes);
      ("hits", Json.Int plan.hits);
      ("wanted_bytes", Json.Int plan.wanted_bytes);
    ]

(* -- flight-recorder interaction ----------------------------------------- *)

(* Journal a plan with everything replay needs: one evidence record per
   deduplicated want (with its possession verdict at planning time) and
   a payload carrying the rendered plan.  {!of_journal_records} inverts
   this; replay re-runs {!compute} over the recorded wants and compares
   renderings byte-for-byte. *)
let journal ~wants plan =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let shipped : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun it -> Hashtbl.replace shipped (Chash.to_hex it.it_key) ())
    plan.items;
  List.iter
    (fun w ->
      let hex = Chash.to_hex w.w_key in
      if not (Hashtbl.mem seen hex) then begin
        Hashtbl.add seen hex ();
        Feam_flightrec.Recorder.evidence ~stage:"depot" ~kind:"want"
          [
            ("label", Json.Str w.w_label);
            ("key", Json.Str hex);
            ("size", Json.Int w.w_size);
            ("possessed", Json.Bool (not (Hashtbl.mem shipped hex)));
          ]
      end)
    wants;
  Feam_flightrec.Recorder.payload ~kind:"transfer_plan"
    (Json.Obj
       [ ("site", Json.Str plan.plan_site); ("text", Json.Str (render plan)) ])

(* Rebuild the recorded wants and possession verdicts from "want"
   evidence fields, in journal order: (want, possessed-at-planning). *)
let want_of_fields fields =
  let str key = Option.bind (List.assoc_opt key fields) Json.to_string_opt in
  let int key = Option.bind (List.assoc_opt key fields) Json.to_int_opt in
  let bool key = Option.bind (List.assoc_opt key fields) Json.to_bool_opt in
  match (str "label", Option.bind (str "key") Chash.of_hex) with
  | Some label, Some key ->
    Some
      ( { w_label = label; w_key = key; w_size = Option.value (int "size") ~default:0 },
        Option.value (bool "possessed") ~default:false )
  | _ -> None
