(* The depot's content hash: a deterministic function of the payload
   bytes and nothing else.  Two captures of the same library image —
   from different paths, sites, or times — always produce the same key,
   which is what makes the store content-addressed and the transfer
   planner's dedup sound.

   The hash is a domain-separated MD5 over the raw bytes: MD5 is in the
   OCaml standard library, stable across platforms, and collision
   resistance against adversaries is not a goal here (the depot stores
   our own captures; the key is an identity, not a signature).  The
   domain prefix pins the definition so a future algorithm change can
   coexist under a new prefix without silently aliasing old keys. *)

type t = string (* 32 lowercase hex characters *)

let domain = "feam.depot.v1\x00"

let of_bytes bytes = Digest.to_hex (Digest.string (domain ^ bytes))

let to_hex t = t

let is_hex_char = function '0' .. '9' | 'a' .. 'f' -> true | _ -> false

let of_hex s =
  if String.length s = 32 && String.for_all is_hex_char s then Some s else None

let of_hex_exn s =
  match of_hex s with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Chash.of_hex_exn: %S" s)

(* Leading digits, for display: long enough to be unique in any
   realistic store, short enough for a table column. *)
let short t = String.sub t 0 12

let equal = String.equal
let compare = String.compare
let pp ppf t = Fmt.string ppf t
