(* The content-addressed library store (the "depot").

   Objects are ELF payloads keyed by {!Chash.of_bytes}; alongside each
   payload lives a metadata sidecar (soname, version, provider site,
   origin path, declared size, dependency keys).  The same libmpi/libc
   image captured by hundreds of source phases interns to one object —
   the first capture is a miss that stores the bytes, every later one
   is a hit that stores nothing.

   Lifetime is managed two ways:
   - *pins* — refcounted holds taken by live manifests and in-flight
     transfer plans; a pinned object is always a GC root;
   - *mark-and-sweep GC* — mark from the pinned set plus caller-supplied
     roots, following each object's recorded dependency keys, then
     sweep everything unmarked.

   All listings are emitted in key order so two stores built from the
   same captures render byte-identically (the CI determinism job diffs
   exactly this). *)

module Json = Feam_util.Json

type meta = {
  m_soname : string option; (* DT_SONAME, when the payload declares one *)
  m_version : string option; (* soname version component, rendered *)
  m_provider : string option; (* site the capture came from *)
  m_origin : string; (* path at the provider site *)
  m_size : int; (* declared on-disk size, for transfer accounting *)
  m_deps : string list; (* content keys of dependencies, hex *)
}

let meta ?soname ?version ?provider ?(origin = "") ?(deps = []) ~size () =
  {
    m_soname = soname;
    m_version = version;
    m_provider = provider;
    m_origin = origin;
    m_size = size;
    m_deps = deps;
  }

type entry = {
  e_key : Chash.t;
  e_bytes : string;
  mutable e_meta : meta;
  mutable e_pins : int;
}

type t = { objects : (string, entry) Hashtbl.t }

type status = Hit | Miss

let status_to_string = function Hit -> "hit" | Miss -> "miss"

let create () = { objects = Hashtbl.create 64 }

let find t key = Hashtbl.find_opt t.objects (Chash.to_hex key)
let mem t key = Hashtbl.mem t.objects (Chash.to_hex key)
let object_count t = Hashtbl.length t.objects

let total_bytes t =
  Hashtbl.fold (fun _ e acc -> acc + e.e_meta.m_size) t.objects 0

let journal_intern key status (m : meta) =
  Feam_flightrec.Recorder.evidence ~stage:"depot" ~kind:"intern"
    [
      ("key", Json.Str (Chash.to_hex key));
      ("status", Json.Str (status_to_string status));
      ("size", Json.Int m.m_size);
      ( "soname",
        match m.m_soname with Some s -> Json.Str s | None -> Json.Null );
    ]

(* [intern t ~meta bytes] — add a payload, or recognize it.  On a hit
   the stored sidecar wins; the new capture's metadata is only used to
   fill fields the stored one lacks (a later capture may know the
   provider or the dependency keys when the first did not). *)
let intern t ~meta:m bytes =
  let key = Chash.of_bytes bytes in
  let hex = Chash.to_hex key in
  match Hashtbl.find_opt t.objects hex with
  | Some e ->
    let merged =
      {
        m_soname =
          (match e.e_meta.m_soname with Some _ as s -> s | None -> m.m_soname);
        m_version =
          (match e.e_meta.m_version with Some _ as s -> s | None -> m.m_version);
        m_provider =
          (match e.e_meta.m_provider with
          | Some _ as s -> s
          | None -> m.m_provider);
        m_origin = (if e.e_meta.m_origin = "" then m.m_origin else e.e_meta.m_origin);
        m_size = e.e_meta.m_size;
        m_deps = (if e.e_meta.m_deps = [] then m.m_deps else e.e_meta.m_deps);
      }
    in
    e.e_meta <- merged;
    Feam_obs.Metrics.incr "depot.hit";
    journal_intern key Hit merged;
    (Hit, key)
  | None ->
    let m = { m with m_size = (if m.m_size = 0 then String.length bytes else m.m_size) } in
    Hashtbl.add t.objects hex { e_key = key; e_bytes = bytes; e_meta = m; e_pins = 0 };
    Feam_obs.Metrics.incr "depot.miss";
    journal_intern key Miss m;
    (Miss, key)

(* -- pins --------------------------------------------------------------- *)

let pin t key =
  match find t key with
  | Some e -> e.e_pins <- e.e_pins + 1
  | None -> invalid_arg ("Store.pin: no object " ^ Chash.to_hex key)

let unpin t key =
  match find t key with
  | Some e when e.e_pins > 0 -> e.e_pins <- e.e_pins - 1
  | Some _ -> invalid_arg ("Store.unpin: not pinned " ^ Chash.to_hex key)
  | None -> invalid_arg ("Store.unpin: no object " ^ Chash.to_hex key)

let pins t key = match find t key with Some e -> e.e_pins | None -> 0

(* -- mark-and-sweep GC --------------------------------------------------- *)

type gc_report = { swept : Chash.t list; kept : int; swept_bytes : int }

(* Mark from every pinned object plus [roots], following recorded
   dependency keys; sweep the rest.  Unknown dependency keys are
   ignored (the dependency was never captured — nothing to keep). *)
let gc ?(roots = []) t =
  let marked : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let rec mark hex =
    if not (Hashtbl.mem marked hex) then
      match Hashtbl.find_opt t.objects hex with
      | None -> ()
      | Some e ->
        Hashtbl.add marked hex ();
        List.iter mark e.e_meta.m_deps
  in
  Hashtbl.iter (fun hex e -> if e.e_pins > 0 then mark hex) t.objects;
  List.iter (fun k -> mark (Chash.to_hex k)) roots;
  let doomed =
    Hashtbl.fold
      (fun hex e acc -> if Hashtbl.mem marked hex then acc else e :: acc)
      t.objects []
    |> List.sort (fun a b -> Chash.compare a.e_key b.e_key)
  in
  List.iter (fun e -> Hashtbl.remove t.objects (Chash.to_hex e.e_key)) doomed;
  Feam_obs.Metrics.incr ~by:(List.length doomed) "depot.gc_swept";
  {
    swept = List.map (fun e -> e.e_key) doomed;
    kept = Hashtbl.length t.objects;
    swept_bytes = List.fold_left (fun acc e -> acc + e.e_meta.m_size) 0 doomed;
  }

(* -- listings ------------------------------------------------------------ *)

(* Entries in key order: the canonical iteration for every rendering. *)
let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.objects []
  |> List.sort (fun a b -> Chash.compare a.e_key b.e_key)

let opt_field = function None -> "-" | Some s -> s

(* One line per object, key-sorted; two stores with the same contents
   render byte-identically. *)
let listing t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%s %10d %-24s pins=%d deps=%d %s\n"
           (Chash.to_hex e.e_key) e.e_meta.m_size
           (opt_field e.e_meta.m_soname)
           e.e_pins
           (List.length e.e_meta.m_deps)
           e.e_meta.m_origin))
    (entries t);
  Buffer.add_string buf
    (Printf.sprintf "total: %d objects, %d bytes\n" (object_count t)
       (total_bytes t));
  Buffer.contents buf

let meta_to_json (m : meta) =
  Json.Obj
    [
      ("soname", match m.m_soname with Some s -> Json.Str s | None -> Json.Null);
      ("version", match m.m_version with Some s -> Json.Str s | None -> Json.Null);
      ( "provider",
        match m.m_provider with Some s -> Json.Str s | None -> Json.Null );
      ("origin", Json.Str m.m_origin);
      ("size", Json.Int m.m_size);
      ("deps", Json.List (List.map (fun d -> Json.Str d) m.m_deps));
    ]

let to_json t =
  Json.Obj
    [
      ("objects", Json.Int (object_count t));
      ("bytes", Json.Int (total_bytes t));
      ( "entries",
        Json.List
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("key", Json.Str (Chash.to_hex e.e_key));
                   ("pins", Json.Int e.e_pins);
                   ("meta", meta_to_json e.e_meta);
                 ])
             (entries t)) );
    ]

(* -- host-filesystem persistence (the `feam depot` CLI) ------------------- *)

(* Layout under the depot directory:
     objects/<first two hex digits>/<key>       payload bytes
     objects/<first two hex digits>/<key>.meta  sidecar, one JSON object
   Pins are runtime state and are not persisted. *)

let shard hex = String.sub hex 0 2

let save_dir t dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let objects = Filename.concat dir "objects" in
  if not (Sys.file_exists objects) then Sys.mkdir objects 0o755;
  List.iter
    (fun e ->
      let hex = Chash.to_hex e.e_key in
      let d = Filename.concat objects (shard hex) in
      if not (Sys.file_exists d) then Sys.mkdir d 0o755;
      Out_channel.with_open_bin (Filename.concat d hex) (fun oc ->
          Out_channel.output_string oc e.e_bytes);
      Out_channel.with_open_text (Filename.concat d (hex ^ ".meta")) (fun oc ->
          Out_channel.output_string oc (Json.render (meta_to_json e.e_meta));
          Out_channel.output_char oc '\n'))
    (entries t)

let meta_of_json json =
  let str key = Option.bind (Json.member key json) Json.to_string_opt in
  {
    m_soname = str "soname";
    m_version = str "version";
    m_provider = str "provider";
    m_origin = Option.value (str "origin") ~default:"";
    m_size =
      Option.value
        (Option.bind (Json.member "size" json) Json.to_int_opt)
        ~default:0;
    m_deps =
      (match Option.bind (Json.member "deps" json) Json.to_list_opt with
      | Some items -> List.filter_map Json.to_string_opt items
      | None -> []);
  }

let load_dir dir =
  let objects = Filename.concat dir "objects" in
  if not (Sys.file_exists objects) then
    Error (Printf.sprintf "%s: not a depot (no objects/ directory)" dir)
  else begin
    let t = create () in
    let problem = ref None in
    Array.iter
      (fun sh ->
        let shdir = Filename.concat objects sh in
        if Sys.is_directory shdir then
          Array.iter
            (fun name ->
              if not (Filename.check_suffix name ".meta") then begin
                let bytes =
                  In_channel.with_open_bin (Filename.concat shdir name)
                    In_channel.input_all
                in
                let key = Chash.of_bytes bytes in
                if Chash.to_hex key <> name then
                  problem :=
                    Some
                      (Printf.sprintf
                         "%s/%s: payload does not hash to its key" sh name)
                else begin
                  let m =
                    let meta_file = Filename.concat shdir (name ^ ".meta") in
                    if Sys.file_exists meta_file then
                      match
                        Json.parse
                          (In_channel.with_open_text meta_file
                             In_channel.input_all)
                      with
                      | Ok json -> meta_of_json json
                      | Error _ -> meta ~size:(String.length bytes) ()
                    else meta ~size:(String.length bytes) ()
                  in
                  Hashtbl.replace t.objects name
                    { e_key = key; e_bytes = bytes; e_meta = m; e_pins = 0 }
                end
              end)
            (Sys.readdir shdir))
      (Sys.readdir objects);
    match !problem with Some e -> Error e | None -> Ok t
  end

(* [open_dir dir] — load an existing depot or start an empty one; the
   CLI's entry point. *)
let open_dir dir =
  if Sys.file_exists (Filename.concat dir "objects") then load_dir dir
  else Ok (create ())
