(** The content-addressed library store (DESIGN §9): ELF payloads keyed
    by {!Chash.of_bytes} with metadata sidecars, refcounted pins, and a
    mark-and-sweep GC over recorded dependency keys.  All listings are
    key-ordered, so equal contents render byte-identically. *)

type meta = {
  m_soname : string option;
  m_version : string option;
  m_provider : string option;
  m_origin : string;
  m_size : int;
  m_deps : string list;  (** content keys of dependencies, hex *)
}

val meta :
  ?soname:string ->
  ?version:string ->
  ?provider:string ->
  ?origin:string ->
  ?deps:string list ->
  size:int ->
  unit ->
  meta

type entry = {
  e_key : Chash.t;
  e_bytes : string;
  mutable e_meta : meta;
  mutable e_pins : int;
}

type t

(** Whether an {!intern} found the payload already stored. *)
type status = Hit | Miss

val status_to_string : status -> string

val create : unit -> t

(** Add a payload or recognize it.  Bumps the [depot.hit] / [depot.miss]
    counters and journals a depot evidence record.  On a hit the stored
    sidecar wins; the new capture only fills fields it lacks. *)
val intern : t -> meta:meta -> string -> status * Chash.t

val find : t -> Chash.t -> entry option
val mem : t -> Chash.t -> bool
val object_count : t -> int
val total_bytes : t -> int

(** Refcounted pins: a pinned object is always a GC root. *)
val pin : t -> Chash.t -> unit

val unpin : t -> Chash.t -> unit
val pins : t -> Chash.t -> int

type gc_report = { swept : Chash.t list; kept : int; swept_bytes : int }

(** Mark from every pinned object plus [roots], following recorded
    dependency keys; sweep everything unmarked (bumps [depot.gc_swept]). *)
val gc : ?roots:Chash.t list -> t -> gc_report

(** Entries in key order — the canonical iteration. *)
val entries : t -> entry list

(** One line per object, key-sorted; byte-identical for equal stores. *)
val listing : t -> string

val to_json : t -> Feam_util.Json.t

(** Persist to / load from a host directory
    ([objects/<aa>/<key>] payloads with [.meta] sidecars).  Pins are
    runtime state and are not persisted. *)
val save_dir : t -> string -> unit

val load_dir : string -> (t, string) result

(** Load an existing depot directory, or start an empty store when the
    directory holds none. *)
val open_dir : string -> (t, string) result
