(** The dedup'd transfer planner: minimal ordered set of depot objects
    a migration must ship to a target site, given what the site already
    holds.  {!compute} is pure; the live pipeline and [feam replay]
    share it, so journaled plans reproduce byte-for-byte. *)

type want = { w_label : string; w_key : Chash.t; w_size : int }

val want : label:string -> key:Chash.t -> size:int -> want

type item = { it_label : string; it_key : Chash.t; it_size : int }

type t = {
  plan_site : string;
  items : item list;  (** ship order: want order, deduplicated by key *)
  hits : int;  (** wanted objects the site already held *)
  shipped_bytes : int;
  wanted_bytes : int;  (** cost had every distinct want shipped in full *)
}

(** [compute ~site ~possessed wants] — wants deduplicate by key (first
    label wins, order preserved); possessed wants ship nothing.
    Observes [depot.plan_bytes] and bumps [depot.plan_hits]/[_misses]. *)
val compute : site:string -> possessed:(Chash.t -> bool) -> want list -> t

(** Bytes the legacy path would ship: every want in full, duplicates
    included. *)
val legacy_bytes : want list -> int

(** Per-site possession index: which objects each site already holds. *)
module Possession : sig
  type index

  val create : unit -> index
  val mem : index -> site:string -> Chash.t -> bool
  val add : index -> site:string -> Chash.t -> unit

  (** Executing a plan makes the site hold every shipped object. *)
  val commit : index -> t -> unit

  val count : index -> site:string -> int
end

(** Deterministic text rendering: ship order, then a summary line. *)
val render : t -> string

val to_json : t -> Feam_util.Json.t

(** Journal the plan to the flight recorder: one "want" evidence record
    per deduplicated want with its possession verdict, plus a
    "transfer_plan" payload carrying the rendered text. *)
val journal : wants:want list -> t -> unit

(** Rebuild a recorded want (and its possession verdict at planning
    time) from a "want" evidence record's fields. *)
val want_of_fields : (string * Feam_util.Json.t) list -> (want * bool) option
