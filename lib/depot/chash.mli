(** The depot's content hash: a deterministic function of the payload
    bytes alone.  Identical bytes yield identical keys regardless of
    the path, site, or time they were captured from. *)

type t

(** Hash a payload.  This is the single definition of object identity
    in the depot (DESIGN §9). *)
val of_bytes : string -> t

(** 32 lowercase hex characters. *)
val to_hex : t -> string

(** Parse a key back from its hex rendering. *)
val of_hex : string -> t option

val of_hex_exn : string -> t

(** Leading 12 hex digits, for tables and log lines. *)
val short : t -> string

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t
