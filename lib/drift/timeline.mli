(** The readiness timeline: append-only schema-versioned JSONL history
    of per-epoch readiness, flips, and attribution — plus declarative
    alert rules gated exactly like [Engine.gate]. *)

val schema_version : int

type flip_entry = { fe_cell : string; fe_before : bool; fe_after : bool }

type attribution_entry = {
  ae_atom : string;  (** "owner path" display form of the changed atom *)
  ae_cells : int;  (** cells this atom invalidated *)
  ae_to_ready : int;
  ae_to_not_ready : int;
}

type entry = {
  te_epoch : int;
  te_hash : string;  (** the epoch snapshot's content address *)
  te_label : string;  (** the perturbation applied; [""] at baseline *)
  te_cells_total : int;
  te_ready : int;
  te_rate : float;
  te_reevaluated : int;  (** cells incrementally re-evaluated *)
  te_flips : flip_entry list;
  te_attribution : attribution_entry list;
}

val entry_to_json : entry -> Feam_util.Json.t

(** Parse timeline.jsonl: line-numbered errors, schema gate per record,
    strictly-increasing epoch numbers. *)
val parse_history : string -> (entry list, string) result

val render_history : entry list -> string

type severity = Info | Warn | Error

val severity_to_string : severity -> string

val severity_of_string : string -> severity option

type rule =
  | Rate_drop of float * severity
      (** fire when an epoch's readiness rate drops more than the
          fraction below the previous epoch's *)
  | Regression of severity  (** fire on any ready -> not-ready flip *)
  | Watch of string * severity
      (** fire on any flip of the named binary's cells; the name may be
          a full binary id or a bare benchmark name, which matches
          every homed variant ([name@site/stack]) *)

val rule_to_string : rule -> string

val default_rules : rule list

(** Parse a rules file: one rule per line ([rate-drop <frac> <sev>],
    [regression <sev>], [watch <binary> <sev>]), ['#'] comments,
    line-numbered errors. *)
val parse_rules : string -> (rule list, string) result

type finding = { fi_epoch : int; fi_severity : severity; fi_message : string }

(** Evaluate rules over consecutive timeline entries; deterministic
    (epoch, rule) order. *)
val check : rule list -> entry list -> finding list

val exit_code : finding list -> int

val fail_on_levels : string list

(** Mirrors [Engine.gate]: "warn" gates on warnings and errors, "error"
    on errors only, "never" always exits 0; anything else is a usage
    error. *)
val gate : fail_on:string -> finding list -> (int, string) result

val render_entries : entry list -> string

val render_findings : finding list -> string

val findings_to_json : finding list -> Feam_util.Json.t
