(** One epoch of fleet evidence: per-site discoveries and library
    inventories, per-binary descriptions and bundle digests, derived
    depot possession, and the verdict table — numbered, timestamp-free,
    content-addressed, serialized as flightrec-style versioned JSONL.

    The same world captured twice serializes byte-identically;
    [of_jsonl] of [to_jsonl] round-trips to the same bytes. *)

val schema_version : int

type site_state = {
  ss_name : string;
  ss_ld_cache_current : bool;
  ss_discovery : Feam_util.Json.t;
      (** [Discovery.to_json] of the target-mode EDC run *)
  ss_inventory : (string * string) list;
      (** loader-visible library path -> content digest *)
}

type binary_state = {
  bs_id : string;
  bs_home : string;
  bs_digest : string;  (** content hash of the binary image *)
  bs_error : string option;  (** source-phase failure, if any *)
  bs_description : Feam_util.Json.t;
      (** [Description.to_json]; [Null] under [bs_error] *)
  bs_bundle : (string * string) list;
      (** bundle element (copy:/probe:/unlocatable:/source_discovery)
          -> content digest *)
}

type cell = {
  cl_binary : string;
  cl_target : string;
  cl_basic : bool;
  cl_basic_reasons : string list;
  cl_extended : bool;
  cl_extended_reasons : string list;
  cl_staged : string list;
}

type t = {
  epoch : int;
  seed : int;
  label : string;
      (** the perturbation this epoch applied; [""] at baseline *)
  sites : site_state list;
  binaries : binary_state list;
  possession : (string * string list) list;
      (** site -> digests of depot objects ready cells shipped there *)
  cells : cell list;
}

(** "binary->target", the matrix cell's display name. *)
val cell_key : cell -> string

(** Sort every list by its natural key so capture order never leaks
    into serialization or hashing.  Applied by [to_jsonl] itself. *)
val normalize : t -> t

val ready_cells : t -> int

(** Extended-ready cells over total cells; 0 on an empty matrix. *)
val readiness_rate : t -> float

val find_cell : t -> binary:string -> target:string -> cell option

(** Serialize to the versioned JSONL epoch document (header line, then
    one record per site/binary/possession/cell).  Deterministic. *)
val to_jsonl : t -> string

(** Parse an epoch document; typed string errors carry line numbers.
    Rejects non-epoch documents and newer schemas. *)
val of_jsonl : string -> (t, string) result

(** Content address of the epoch: [Depot.Chash] over the serialized
    body under a drift-specific domain prefix, in hex. *)
val hash : t -> string

(** Who an evidence atom belongs to — the unit invalidation maps back
    to matrix cells.  Shared with the core evidence store so drift and
    the resident prediction service speak one atom vocabulary. *)
type owner = Feam_core.Evidence.owner =
  | Site_owner of string
  | Binary_owner of string

val owner_to_string : owner -> string

(** One site's evidence as (owner, dotted path, value) atoms. *)
val site_atoms : site_state -> (owner * string * string) list

(** One binary's evidence as (owner, dotted path, value) atoms. *)
val binary_atoms : binary_state -> (owner * string * string) list

(** Every fleet-evidence fact as an (owner, dotted path, value) atom.
    Cells and possession are derived data and contribute no atoms. *)
val evidence_atoms : t -> (owner * string * string) list
