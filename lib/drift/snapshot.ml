(* One epoch of fleet evidence: everything the migration matrix's
   verdicts are a function of, captured as plain data — per-site
   discoveries and library inventories, per-binary descriptions and
   bundle digests, the depot possession derived from ready cells, and
   the verdict table itself.

   Epochs are numbered, never timestamped: the same world captured
   twice serializes byte-identically, and the content address (reusing
   the depot's Chash under a drift-specific domain prefix) is the
   epoch's identity.  On disk an epoch is a flightrec-style versioned
   JSONL document: a header line, then one record per site, binary,
   possession row and cell. *)

module Json = Feam_util.Json
module Chash = Feam_depot.Chash
module Diff = Feam_flightrec.Diff

let schema_version = 1

(* Domain separation on top of the depot hash: an epoch body and a
   library payload with identical bytes must never collide keys. *)
let hash_domain = "feam.drift.epoch.v1\x00"

type site_state = {
  ss_name : string;
  ss_ld_cache_current : bool;
  ss_discovery : Json.t;  (* Discovery.to_json of the target-mode EDC run *)
  ss_inventory : (string * string) list;  (* loader-visible path -> digest *)
}

type binary_state = {
  bs_id : string;
  bs_home : string;
  bs_digest : string;  (* content hash of the binary image *)
  bs_error : string option;  (* source-phase failure, if any *)
  bs_description : Json.t;  (* Description.to_json; Null under bs_error *)
  bs_bundle : (string * string) list;  (* bundle element -> digest *)
}

type cell = {
  cl_binary : string;
  cl_target : string;
  cl_basic : bool;
  cl_basic_reasons : string list;
  cl_extended : bool;
  cl_extended_reasons : string list;
  cl_staged : string list;
}

type t = {
  epoch : int;
  seed : int;
  label : string;  (* the perturbation this epoch applied; "" at baseline *)
  sites : site_state list;
  binaries : binary_state list;
  possession : (string * string list) list;  (* site -> object digests *)
  cells : cell list;
}

let cell_key c = c.cl_binary ^ "->" ^ c.cl_target

(* Canonical ordering: every list sorted by its natural key, so capture
   order never leaks into the serialization or the hash. *)
let normalize t =
  {
    t with
    sites =
      List.map
        (fun s ->
          { s with ss_inventory = List.sort compare s.ss_inventory })
        t.sites
      |> List.sort (fun a b -> String.compare a.ss_name b.ss_name);
    binaries =
      List.map (fun b -> { b with bs_bundle = List.sort compare b.bs_bundle })
        t.binaries
      |> List.sort (fun a b -> String.compare a.bs_id b.bs_id);
    possession =
      List.map (fun (s, ks) -> (s, List.sort_uniq compare ks)) t.possession
      |> List.sort compare;
    cells =
      List.sort
        (fun a b ->
          compare (a.cl_binary, a.cl_target) (b.cl_binary, b.cl_target))
        t.cells;
  }

let ready_cells t =
  List.length (List.filter (fun c -> c.cl_extended) t.cells)

let readiness_rate t =
  match t.cells with
  | [] -> 0.0
  | cells -> float_of_int (ready_cells t) /. float_of_int (List.length cells)

let find_cell t ~binary ~target =
  List.find_opt
    (fun c -> c.cl_binary = binary && c.cl_target = target)
    t.cells

(* -- serialization ---------------------------------------------------- *)

let str_list l = Json.List (List.map (fun s -> Json.Str s) l)

let pairs_json ~key ~value l =
  Json.List
    (List.map
       (fun (k, v) -> Json.Obj [ (key, Json.Str k); (value, Json.Str v) ])
       l)

let site_to_json s =
  Json.Obj
    [
      ("type", Json.Str "site");
      ("name", Json.Str s.ss_name);
      ("ld_cache_current", Json.Bool s.ss_ld_cache_current);
      ("discovery", s.ss_discovery);
      ("inventory", pairs_json ~key:"path" ~value:"digest" s.ss_inventory);
    ]

let binary_to_json b =
  Json.Obj
    [
      ("type", Json.Str "binary");
      ("id", Json.Str b.bs_id);
      ("home", Json.Str b.bs_home);
      ("digest", Json.Str b.bs_digest);
      ( "error",
        match b.bs_error with None -> Json.Null | Some e -> Json.Str e );
      ("description", b.bs_description);
      ("bundle", pairs_json ~key:"name" ~value:"digest" b.bs_bundle);
    ]

let possession_to_json (site, keys) =
  Json.Obj
    [
      ("type", Json.Str "possession");
      ("site", Json.Str site);
      ("objects", str_list keys);
    ]

let cell_to_json c =
  Json.Obj
    [
      ("type", Json.Str "cell");
      ("binary", Json.Str c.cl_binary);
      ("target", Json.Str c.cl_target);
      ("basic", Json.Bool c.cl_basic);
      ("basic_reasons", str_list c.cl_basic_reasons);
      ("extended", Json.Bool c.cl_extended);
      ("extended_reasons", str_list c.cl_extended_reasons);
      ("staged", str_list c.cl_staged);
    ]

let to_jsonl t =
  let t = normalize t in
  let buf = Buffer.create 4096 in
  let line json = Buffer.add_string buf (Json.render json ^ "\n") in
  line
    (Json.Obj
       [
         ("type", Json.Str "epoch");
         ("schema", Json.Int schema_version);
         ("tool", Json.Str "drift");
       ]);
  line
    (Json.Obj
       [
         ("type", Json.Str "meta");
         ("epoch", Json.Int t.epoch);
         ("seed", Json.Int t.seed);
         ("label", Json.Str t.label);
       ]);
  List.iter (fun s -> line (site_to_json s)) t.sites;
  List.iter (fun b -> line (binary_to_json b)) t.binaries;
  List.iter (fun p -> line (possession_to_json p)) t.possession;
  List.iter (fun c -> line (cell_to_json c)) t.cells;
  Buffer.contents buf

let hash t = Chash.to_hex (Chash.of_bytes (hash_domain ^ to_jsonl t))

(* -- parsing ---------------------------------------------------------- *)

let str_field key json = Option.bind (Json.member key json) Json.to_string_opt

let bool_field key json = Option.bind (Json.member key json) Json.to_bool_opt

let strs_field key json =
  match Option.bind (Json.member key json) Json.to_list_opt with
  | None -> []
  | Some items -> List.filter_map Json.to_string_opt items

let pairs_field ~key ~value field json =
  match Option.bind (Json.member field json) Json.to_list_opt with
  | None -> []
  | Some items ->
    List.filter_map
      (fun item ->
        match (str_field key item, str_field value item) with
        | Some k, Some v -> Some (k, v)
        | _ -> None)
      items

let parse_record json t =
  match str_field "type" json with
  | Some "meta" -> (
    match
      ( Option.bind (Json.member "epoch" json) Json.to_int_opt,
        Option.bind (Json.member "seed" json) Json.to_int_opt )
    with
    | Some epoch, Some seed ->
      Ok
        {
          t with
          epoch;
          seed;
          label = Option.value (str_field "label" json) ~default:"";
        }
    | _ -> Error "meta record needs integer epoch and seed")
  | Some "site" -> (
    match str_field "name" json with
    | None -> Error "site record needs a name"
    | Some name ->
      let s =
        {
          ss_name = name;
          ss_ld_cache_current =
            Option.value (bool_field "ld_cache_current" json) ~default:true;
          ss_discovery =
            Option.value (Json.member "discovery" json) ~default:Json.Null;
          ss_inventory = pairs_field ~key:"path" ~value:"digest" "inventory" json;
        }
      in
      Ok { t with sites = s :: t.sites })
  | Some "binary" -> (
    match (str_field "id" json, str_field "home" json) with
    | Some id, Some home ->
      let b =
        {
          bs_id = id;
          bs_home = home;
          bs_digest = Option.value (str_field "digest" json) ~default:"";
          bs_error = str_field "error" json;
          bs_description =
            Option.value (Json.member "description" json) ~default:Json.Null;
          bs_bundle = pairs_field ~key:"name" ~value:"digest" "bundle" json;
        }
      in
      Ok { t with binaries = b :: t.binaries }
    | _ -> Error "binary record needs id and home")
  | Some "possession" -> (
    match str_field "site" json with
    | None -> Error "possession record needs a site"
    | Some site ->
      Ok
        { t with possession = (site, strs_field "objects" json) :: t.possession })
  | Some "cell" -> (
    match (str_field "binary" json, str_field "target" json) with
    | Some binary, Some target ->
      let c =
        {
          cl_binary = binary;
          cl_target = target;
          cl_basic = Option.value (bool_field "basic" json) ~default:false;
          cl_basic_reasons = strs_field "basic_reasons" json;
          cl_extended = Option.value (bool_field "extended" json) ~default:false;
          cl_extended_reasons = strs_field "extended_reasons" json;
          cl_staged = strs_field "staged" json;
        }
      in
      Ok { t with cells = c :: t.cells }
    | _ -> Error "cell record needs binary and target")
  | Some _ -> Ok t (* unknown record types are preserved-by-ignoring *)
  | None -> Error "record without a type"

let of_jsonl body =
  let lines =
    String.split_on_char '\n' body |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "empty epoch document"
  | header :: records -> (
    match Json.parse header with
    | Error e -> Error ("header: " ^ e)
    | Ok json -> (
      match
        ( str_field "type" json,
          Option.bind (Json.member "schema" json) Json.to_int_opt )
      with
      | Some "epoch", Some v when v <= schema_version ->
        let empty =
          {
            epoch = 0;
            seed = 0;
            label = "";
            sites = [];
            binaries = [];
            possession = [];
            cells = [];
          }
        in
        let rec go lineno t = function
          | [] -> Ok (normalize t)
          | line :: rest -> (
            let fail msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
            match Json.parse line with
            | Error e -> fail e
            | Ok json -> (
              match parse_record json t with
              | Error e -> fail e
              | Ok t -> go (lineno + 1) t rest))
        in
        go 2 empty records
      | Some "epoch", Some v ->
        Error
          (Printf.sprintf "unsupported epoch schema %d (this build reads <= %d)"
             v schema_version)
      | Some "epoch", None -> Error "header: missing schema version"
      | _ -> Error "not a drift epoch document"))

(* -- evidence atoms ---------------------------------------------------- *)

(* The invalidation engine's vocabulary: each fleet-evidence fact as an
   (owner, dotted path, value) atom.  Cells and possession are derived
   data — they are never inputs to invalidation, so they contribute no
   atoms.  The owner type is the core evidence store's — drift and the
   resident prediction service share one atom vocabulary. *)

type owner = Feam_core.Evidence.owner =
  | Site_owner of string
  | Binary_owner of string

let owner_to_string = Feam_core.Evidence.owner_to_string

let site_atoms s =
  (("ld_cache_current", string_of_bool s.ss_ld_cache_current)
   :: List.map (fun (p, v) -> ("discovery." ^ p, v)) (Diff.atoms s.ss_discovery)
  @ List.map (fun (path, digest) -> ("inventory." ^ path, digest)) s.ss_inventory)
  |> List.map (fun (p, v) -> (Site_owner s.ss_name, p, v))

let binary_atoms b =
  (("home", b.bs_home) :: ("digest", b.bs_digest)
   :: (match b.bs_error with
      | None -> []
      | Some e -> [ ("error", e) ])
  @ List.map (fun (p, v) -> ("description." ^ p, v))
      (Diff.atoms b.bs_description)
  @ List.map (fun (name, digest) -> ("bundle." ^ name, digest)) b.bs_bundle)
  |> List.map (fun (p, v) -> (Binary_owner b.bs_id, p, v))

let evidence_atoms t =
  let t = normalize t in
  List.concat_map site_atoms t.sites
  @ List.concat_map binary_atoms t.binaries
