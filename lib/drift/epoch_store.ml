(* On-disk store of epoch snapshots: one JSONL document per numbered
   epoch under a root directory.  Filenames are derived from the epoch
   number alone, so putting the same snapshot twice is idempotent and
   two runs of the same sequence produce byte-identical directories. *)

type t = { dir : string }

let open_ dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  { dir }

let file_of_epoch n = Printf.sprintf "epoch_%04d.jsonl" n

let epoch_of_file name =
  match Scanf.sscanf_opt name "epoch_%04d.jsonl%!" (fun n -> n) with
  | Some n when file_of_epoch n = name -> Some n
  | _ -> None

let path t n = Filename.concat t.dir (file_of_epoch n)

let put t snapshot =
  let p = path t snapshot.Snapshot.epoch in
  Out_channel.with_open_text p (fun oc ->
      Out_channel.output_string oc (Snapshot.to_jsonl snapshot));
  p

let get t n =
  let p = path t n in
  if not (Sys.file_exists p) then
    Error (Printf.sprintf "no epoch %d in %s" n t.dir)
  else
    let body = In_channel.with_open_text p In_channel.input_all in
    match Snapshot.of_jsonl body with
    | Error e -> Error (Printf.sprintf "%s: %s" p e)
    | Ok s -> Ok s

let list t =
  (if Sys.file_exists t.dir then Sys.readdir t.dir else [||])
  |> Array.to_list
  |> List.filter_map epoch_of_file
  |> List.sort compare

let latest t =
  match List.rev (list t) with [] -> None | n :: _ -> Some n
