(** On-disk store of epoch snapshots: one JSONL document per numbered
    epoch under a root directory, byte-identical across runs of the
    same sequence. *)

type t

(** Open (creating if absent) a store rooted at the directory. *)
val open_ : string -> t

(** Write the snapshot under its epoch number; returns the file path.
    Idempotent: the same snapshot writes the same bytes. *)
val put : t -> Snapshot.t -> string

(** Load epoch [n]; typed error when absent or unparseable. *)
val get : t -> int -> (Snapshot.t, string) result

(** Stored epoch numbers, ascending. *)
val list : t -> int list

(** The highest stored epoch number, if any. *)
val latest : t -> int option
