(* The readiness timeline: an append-only, schema-versioned JSONL
   history of the fleet's readiness rate across epochs, plus the
   declarative alert rules evaluated over it.

   Mirrors Benchtrend's BENCH_history.jsonl discipline: one record per
   line, a schema tag on every record, strictly-increasing epoch
   numbers, line-numbered parse errors, no timestamps.  The gate mirrors
   Engine.gate so `feam drift check --fail-on` behaves exactly like
   `feam check --fail-on`. *)

module Json = Feam_util.Json
module Table = Feam_util.Table

let schema_version = 1

type flip_entry = { fe_cell : string; fe_before : bool; fe_after : bool }

type attribution_entry = {
  ae_atom : string;  (* "owner path", e.g. "site fir inventory./lib64/libm.so.6" *)
  ae_cells : int;    (* cells this atom invalidated *)
  ae_to_ready : int;
  ae_to_not_ready : int;
}

type entry = {
  te_epoch : int;
  te_hash : string;  (* the epoch snapshot's content address *)
  te_label : string; (* the perturbation applied; "" at baseline *)
  te_cells_total : int;
  te_ready : int;
  te_rate : float;
  te_reevaluated : int; (* cells incrementally re-evaluated this epoch *)
  te_flips : flip_entry list;
  te_attribution : attribution_entry list;
}

(* -- serialization ----------------------------------------------------- *)

let entry_to_json e =
  Json.Obj
    [
      ("schema", Json.Int schema_version);
      ("epoch", Json.Int e.te_epoch);
      ("hash", Json.Str e.te_hash);
      ("label", Json.Str e.te_label);
      ("cells_total", Json.Int e.te_cells_total);
      ("ready", Json.Int e.te_ready);
      ("rate", Json.Float e.te_rate);
      ("reevaluated", Json.Int e.te_reevaluated);
      ( "flips",
        Json.List
          (List.map
             (fun f ->
               Json.Obj
                 [
                   ("cell", Json.Str f.fe_cell);
                   ("before", Json.Bool f.fe_before);
                   ("after", Json.Bool f.fe_after);
                 ])
             e.te_flips) );
      ( "attribution",
        Json.List
          (List.map
             (fun a ->
               Json.Obj
                 [
                   ("atom", Json.Str a.ae_atom);
                   ("cells", Json.Int a.ae_cells);
                   ("to_ready", Json.Int a.ae_to_ready);
                   ("to_not_ready", Json.Int a.ae_to_not_ready);
                 ])
             e.te_attribution) );
    ]

let int_field key json = Option.bind (Json.member key json) Json.to_int_opt

let str_field key json = Option.bind (Json.member key json) Json.to_string_opt

let bool_field key json = Option.bind (Json.member key json) Json.to_bool_opt

let number = function
  | Json.Float f -> Some f
  | Json.Int i -> Some (float_of_int i)
  | _ -> None

let entry_of_json json =
  match int_field "schema" json with
  | Some v when v <> schema_version ->
    Error (Printf.sprintf "unsupported schema %d (want %d)" v schema_version)
  | None -> Error "record needs an integer schema"
  | Some _ -> (
    match
      ( int_field "epoch" json,
        int_field "cells_total" json,
        int_field "ready" json,
        Option.bind (Json.member "rate" json) number )
    with
    | Some epoch, Some cells_total, Some ready, Some rate ->
      let flips =
        match Option.bind (Json.member "flips" json) Json.to_list_opt with
        | None -> []
        | Some items ->
          List.filter_map
            (fun item ->
              match
                ( str_field "cell" item,
                  bool_field "before" item,
                  bool_field "after" item )
              with
              | Some cell, Some before, Some after ->
                Some { fe_cell = cell; fe_before = before; fe_after = after }
              | _ -> None)
            items
      in
      let attribution =
        match Option.bind (Json.member "attribution" json) Json.to_list_opt with
        | None -> []
        | Some items ->
          List.filter_map
            (fun item ->
              match (str_field "atom" item, int_field "cells" item) with
              | Some atom, Some cells ->
                Some
                  {
                    ae_atom = atom;
                    ae_cells = cells;
                    ae_to_ready = Option.value (int_field "to_ready" item) ~default:0;
                    ae_to_not_ready =
                      Option.value (int_field "to_not_ready" item) ~default:0;
                  }
              | _ -> None)
            items
      in
      Ok
        {
          te_epoch = epoch;
          te_hash = Option.value (str_field "hash" json) ~default:"";
          te_label = Option.value (str_field "label" json) ~default:"";
          te_cells_total = cells_total;
          te_ready = ready;
          te_rate = rate;
          te_reevaluated = Option.value (int_field "reevaluated" json) ~default:0;
          te_flips = flips;
          te_attribution = attribution;
        }
    | _ -> Error "record needs integer epoch/cells_total/ready and a rate")

let parse_history text =
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")
  in
  let rec go lineno last_epoch acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      let fail msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
      match Json.parse line with
      | Error e -> fail e
      | Ok json -> (
        match entry_of_json json with
        | Error e -> fail e
        | Ok entry ->
          if acc <> [] && entry.te_epoch <= last_epoch then
            fail
              (Printf.sprintf "epoch %d does not increase on previous epoch %d"
                 entry.te_epoch last_epoch)
          else go (lineno + 1) entry.te_epoch (entry :: acc) rest))
  in
  go 1 min_int [] lines

let render_history entries =
  String.concat ""
    (List.map (fun e -> Json.render (entry_to_json e) ^ "\n") entries)

(* -- alert rules ------------------------------------------------------- *)

type severity = Info | Warn | Error

let severity_rank = function Info -> 0 | Warn -> 1 | Error -> 2

let severity_to_string = function
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let severity_of_string = function
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type rule =
  | Rate_drop of float * severity
      (* fire when an epoch's rate drops more than the fraction below
         the previous epoch's rate *)
  | Regression of severity
      (* fire on any ready -> not-ready flip *)
  | Watch of string * severity
      (* fire on any flip (either direction) of the named binary *)

let rule_to_string = function
  | Rate_drop (f, s) -> Printf.sprintf "rate-drop %g %s" f (severity_to_string s)
  | Regression s -> Printf.sprintf "regression %s" (severity_to_string s)
  | Watch (b, s) -> Printf.sprintf "watch %s %s" b (severity_to_string s)

(* The seeded single-atom perturbations move readiness a few cells at a
   time, so a 30% drop means a correlated fleet event, not noise. *)
let default_rules = [ Rate_drop (0.30, Warn); Regression Info ]

(* Rule files: one rule per line, '#' comments.
     rate-drop <fraction> <severity>
     regression <severity>
     watch <binary-id> <severity>  *)
let parse_rules text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Stdlib.Ok (List.rev acc)
    | line :: rest -> (
      let fail msg = Stdlib.Error (Printf.sprintf "line %d: %s" lineno msg) in
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      match
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun w -> w <> "")
      with
      | [] -> go (lineno + 1) acc rest
      | [ "rate-drop"; frac; sev ] -> (
        match (float_of_string_opt frac, severity_of_string sev) with
        | Some f, Some s when f > 0.0 && f <= 1.0 ->
          go (lineno + 1) (Rate_drop (f, s) :: acc) rest
        | Some _, Some _ -> fail "rate-drop fraction must be in (0, 1]"
        | None, _ -> fail (Printf.sprintf "bad fraction %S" frac)
        | _, None -> fail (Printf.sprintf "bad severity %S" sev))
      | [ "regression"; sev ] -> (
        match severity_of_string sev with
        | Some s -> go (lineno + 1) (Regression s :: acc) rest
        | None -> fail (Printf.sprintf "bad severity %S" sev))
      | [ "watch"; binary; sev ] -> (
        match severity_of_string sev with
        | Some s -> go (lineno + 1) (Watch (binary, s) :: acc) rest
        | None -> fail (Printf.sprintf "bad severity %S" sev))
      | word :: _ -> fail (Printf.sprintf "unknown rule %S" word))
  in
  go 1 [] lines

type finding = { fi_epoch : int; fi_severity : severity; fi_message : string }

(* Evaluate rules over consecutive timeline entries.  Deterministic:
   findings come out in (epoch, rule order) order. *)
let check rules entries =
  let rec pairs acc = function
    | a :: (b :: _ as rest) -> pairs ((Some a, b) :: acc) rest
    | [ only ] when acc = [] -> [ (None, only) ]
    | _ -> List.rev acc
  in
  let windows =
    match entries with
    | [] -> []
    | [ only ] -> [ (None, only) ]
    | entries -> pairs [] entries
  in
  List.concat_map
    (fun (prev, e) ->
      List.filter_map
        (fun rule ->
          match rule with
          | Rate_drop (threshold, sev) -> (
            match prev with
            | Some p when p.te_rate -. e.te_rate > threshold ->
              Some
                {
                  fi_epoch = e.te_epoch;
                  fi_severity = sev;
                  fi_message =
                    Printf.sprintf
                      "readiness rate dropped %.3f -> %.3f (more than %g) at \
                       epoch %d%s"
                      p.te_rate e.te_rate threshold e.te_epoch
                      (if e.te_label = "" then ""
                       else Printf.sprintf " (%s)" e.te_label);
                }
            | _ -> None)
          | Regression sev -> (
            match
              List.filter (fun f -> f.fe_before && not f.fe_after) e.te_flips
            with
            | [] -> None
            | regs ->
              Some
                {
                  fi_epoch = e.te_epoch;
                  fi_severity = sev;
                  fi_message =
                    Printf.sprintf "%d cell%s went ready -> not-ready at epoch %d: %s"
                      (List.length regs)
                      (if List.length regs = 1 then "" else "s")
                      e.te_epoch
                      (String.concat ", " (List.map (fun f -> f.fe_cell) regs));
                })
          | Watch (binary, sev) -> (
            (* a full binary id matches its own cells ("id->target");
               a bare benchmark name matches every homed variant
               ("name@site/stack->target") *)
            let has_prefix p c =
              String.length c >= String.length p
              && String.sub c 0 (String.length p) = p
            in
            let mine =
              List.filter
                (fun f ->
                  has_prefix (binary ^ "->") f.fe_cell
                  || has_prefix (binary ^ "@") f.fe_cell)
                e.te_flips
            in
            match mine with
            | [] -> None
            | mine ->
              Some
                {
                  fi_epoch = e.te_epoch;
                  fi_severity = sev;
                  fi_message =
                    Printf.sprintf "watched binary %s flipped at epoch %d: %s"
                      binary e.te_epoch
                      (String.concat ", "
                         (List.map
                            (fun f ->
                              Printf.sprintf "%s %s->%s" f.fe_cell
                                (if f.fe_before then "ready" else "not-ready")
                                (if f.fe_after then "ready" else "not-ready"))
                            mine));
                }))
        rules)
    windows

(* -- gating ------------------------------------------------------------ *)

let worst findings =
  List.fold_left
    (fun acc f ->
      match acc with
      | None -> Some f.fi_severity
      | Some s ->
        if severity_rank f.fi_severity > severity_rank s then Some f.fi_severity
        else acc)
    None findings

let exit_code findings =
  match worst findings with
  | Some Error -> 2
  | Some Warn -> 1
  | Some Info | None -> 0

let fail_on_levels = [ "warn"; "error"; "never" ]

(* Mirrors Engine.gate so drift check composes with the rest of the
   CLI's --fail-on contract. *)
let gate ~fail_on findings =
  match fail_on with
  | "warn" -> Stdlib.Ok (exit_code findings)
  | "error" -> Stdlib.Ok (if exit_code findings = 2 then 2 else 0)
  | "never" -> Stdlib.Ok 0
  | other ->
    Stdlib.Error
      (Printf.sprintf "unknown --fail-on level %S (expected %s)" other
         (String.concat ", " fail_on_levels))

(* -- rendering --------------------------------------------------------- *)

let render_entries entries =
  let rows =
    List.map
      (fun e ->
        [
          string_of_int e.te_epoch;
          (if e.te_label = "" then "(baseline)" else e.te_label);
          Printf.sprintf "%d/%d" e.te_ready e.te_cells_total;
          Printf.sprintf "%.3f" e.te_rate;
          string_of_int e.te_reevaluated;
          string_of_int (List.length e.te_flips);
        ])
      entries
  in
  Table.render
    (Table.make ~title:"readiness timeline"
       ~aligns:
         [ Table.Right; Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
       ~header:[ "Epoch"; "Perturbation"; "Ready"; "Rate"; "Re-eval"; "Flips" ]
       rows)

let render_findings findings =
  match findings with
  | [] -> "drift check: no alerts\n"
  | findings ->
    String.concat ""
      (List.map
         (fun f ->
           Printf.sprintf "[%s] %s\n"
             (severity_to_string f.fi_severity)
             f.fi_message)
         findings)

let findings_to_json findings =
  Json.List
    (List.map
       (fun f ->
         Json.Obj
           [
             ("epoch", Json.Int f.fi_epoch);
             ("severity", Json.Str (severity_to_string f.fi_severity));
             ("message", Json.Str f.fi_message);
           ])
       findings)
