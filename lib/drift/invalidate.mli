(** The invalidation engine: diff two epoch snapshots' evidence atoms,
    map each flipped atom through the determinant<-evidence dependency
    map (read off [Tec.decide]'s per-determinant evidence records) to
    the exact set of matrix cells needing re-evaluation. *)

type cell_id = { ci_binary : string; ci_target : string }

(** "binary->target". *)
val cell_id_key : cell_id -> string

type change = {
  ch_owner : Snapshot.owner;
  ch_path : string;
  ch_a : string option;  (** value in the base epoch; [None] if added *)
  ch_b : string option;  (** value in the new epoch; [None] if removed *)
  ch_determinants : string list;
      (** determinants this atom feeds; [[]] means verdict-inert *)
  ch_cells : cell_id list;  (** cells this atom invalidates, sorted *)
}

type plan = {
  pl_epoch_a : int;
  pl_epoch_b : int;
  pl_cells_total : int;
  pl_affected : cell_id list;  (** union of [ch_cells], sorted, deduped *)
  pl_changes : change list;
}

val all_determinants : string list

(** Determinants an (owner, path) atom feeds.  Unknown paths
    conservatively return [all_determinants] — soundness over
    precision. *)
val determinants_of_atom : Snapshot.owner -> string -> string list

(** Diff the evidence atoms of two epochs and compute the
    re-evaluation set over the base epoch's cell list. *)
val affected : Snapshot.t -> Snapshot.t -> plan

val is_affected : plan -> binary:string -> target:string -> bool

(** Incremental verdict table: re-evaluated cells replace their rows in
    [base]; untouched cells carry forward. *)
val merge :
  base:Snapshot.cell list ->
  reevaluated:Snapshot.cell list ->
  Snapshot.cell list

type flip = { fp_cell : cell_id; fp_before : bool; fp_after : bool }

(** Extended-verdict flips between two verdict tables, sorted by cell. *)
val flips : before:Snapshot.cell list -> after:Snapshot.cell list -> flip list

type attribution = {
  at_change : change;
  at_to_ready : int;
  at_to_not_ready : int;
}

(** Per-change attribution: how many of each changed atom's invalidated
    cells flipped, and in which direction. *)
val attribute : plan -> flip list -> attribution list

(** Bump [drift.cells_reevaluated] / [drift.cells_total] counters. *)
val record_metrics : plan -> unit

(** Set the [drift.epoch] / [drift.ready_cells] /
    [drift.readiness_rate] gauges from a snapshot. *)
val record_epoch_gauges : Snapshot.t -> unit

val render_text : plan -> flip list -> string

val to_json : plan -> flip list -> Feam_util.Json.t
