(* The invalidation engine: diff two epochs' evidence atoms, map each
   changed atom through the determinant<-evidence dependency map to the
   matrix cells whose verdicts could depend on it, and hand back the
   exact re-evaluation set.

   The dependency map is read off `Tec.decide`'s per-determinant
   evidence records: which discovery/description facts each of the four
   determinants (isa, glibc, mpi_stack, shared_libraries) consumes.
   Soundness argument (DESIGN §13): the verdict of a cell is a pure
   function of its binary's atoms and its target site's atoms; an atom
   unknown to the map conservatively invalidates every determinant, so
   a cell outside the affected set has byte-identical inputs across the
   two epochs and therefore a byte-identical verdict. *)

module Json = Feam_util.Json

type cell_id = { ci_binary : string; ci_target : string }

let cell_id_key c = c.ci_binary ^ "->" ^ c.ci_target

type change = {
  ch_owner : Snapshot.owner;
  ch_path : string;
  ch_a : string option;
  ch_b : string option;
  ch_determinants : string list;
  ch_cells : cell_id list;  (* cells this atom invalidates, sorted *)
}

type plan = {
  pl_epoch_a : int;
  pl_epoch_b : int;
  pl_cells_total : int;
  pl_affected : cell_id list;  (* union of ch_cells, sorted, deduped *)
  pl_changes : change list;
}

(* -- the determinant <- evidence dependency map ------------------------ *)

(* The map itself lives in [Feam_core.Evidence] (promoted from here so
   the resident prediction service shares it); this module keeps the
   epoch-level diffing and planning on top. *)

let all_determinants = Feam_core.Evidence.all_determinants

let determinants_of_atom = Feam_core.Evidence.determinants_of_atom

(* -- atom diff --------------------------------------------------------- *)

let compare_cells a b = compare (a.ci_binary, a.ci_target) (b.ci_binary, b.ci_target)

let compare_owners = Feam_core.Evidence.compare_owner

(* Cells a changed atom invalidates: site atoms reach the cells
   targeting that site (home-side effects surface as binary atoms — the
   snapshot captures the bundle the home site produces); binary atoms
   reach every cell of that binary. *)
let cells_of_owner cells owner determinants =
  if determinants = [] then []
  else
    List.filter
      (fun (c : Snapshot.cell) ->
        match owner with
        | Snapshot.Site_owner s -> c.Snapshot.cl_target = s
        | Snapshot.Binary_owner b -> c.Snapshot.cl_binary = b)
      cells
    |> List.map (fun (c : Snapshot.cell) ->
           { ci_binary = c.Snapshot.cl_binary; ci_target = c.Snapshot.cl_target })
    |> List.sort_uniq compare_cells

let affected (a : Snapshot.t) (b : Snapshot.t) =
  let index atoms =
    let tbl = Hashtbl.create 1024 in
    List.iter (fun (owner, path, v) -> Hashtbl.replace tbl (owner, path) v) atoms;
    tbl
  in
  let atoms_a = Snapshot.evidence_atoms a in
  let atoms_b = Snapshot.evidence_atoms b in
  let ia = index atoms_a and ib = index atoms_b in
  let changed = Hashtbl.create 64 in
  List.iter
    (fun (owner, path, va) ->
      match Hashtbl.find_opt ib (owner, path) with
      | Some vb when vb = va -> ()
      | Some vb -> Hashtbl.replace changed (owner, path) (Some va, Some vb)
      | None -> Hashtbl.replace changed (owner, path) (Some va, None))
    atoms_a;
  List.iter
    (fun (owner, path, vb) ->
      if not (Hashtbl.mem ia (owner, path)) then
        Hashtbl.replace changed (owner, path) (None, Some vb))
    atoms_b;
  let changes =
    Hashtbl.fold
      (fun (owner, path) (va, vb) acc ->
        let determinants = determinants_of_atom owner path in
        {
          ch_owner = owner;
          ch_path = path;
          ch_a = va;
          ch_b = vb;
          ch_determinants = determinants;
          ch_cells = cells_of_owner a.Snapshot.cells owner determinants;
        }
        :: acc)
      changed []
    |> List.sort (fun x y ->
           match compare_owners x.ch_owner y.ch_owner with
           | 0 -> String.compare x.ch_path y.ch_path
           | c -> c)
  in
  let affected =
    List.concat_map (fun c -> c.ch_cells) changes
    |> List.sort_uniq compare_cells
  in
  {
    pl_epoch_a = a.Snapshot.epoch;
    pl_epoch_b = b.Snapshot.epoch;
    pl_cells_total = List.length a.Snapshot.cells;
    pl_affected = affected;
    pl_changes = changes;
  }

let is_affected plan ~binary ~target =
  List.exists
    (fun c -> c.ci_binary = binary && c.ci_target = target)
    plan.pl_affected

(* -- merging and flip accounting --------------------------------------- *)

(* The incremental verdict table: re-evaluated cells replace their
   epoch-A rows; everything else carries forward untouched. *)
let merge ~base ~reevaluated =
  let fresh = Hashtbl.create 64 in
  List.iter
    (fun (c : Snapshot.cell) ->
      Hashtbl.replace fresh (c.Snapshot.cl_binary, c.Snapshot.cl_target) c)
    reevaluated;
  List.map
    (fun (c : Snapshot.cell) ->
      match Hashtbl.find_opt fresh (c.Snapshot.cl_binary, c.Snapshot.cl_target) with
      | Some c' -> c'
      | None -> c)
    base

type flip = { fp_cell : cell_id; fp_before : bool; fp_after : bool }

(* Extended-verdict flips between two verdict tables, by cell key. *)
let flips ~before ~after =
  let old = Hashtbl.create 64 in
  List.iter
    (fun (c : Snapshot.cell) ->
      Hashtbl.replace old
        (c.Snapshot.cl_binary, c.Snapshot.cl_target)
        c.Snapshot.cl_extended)
    before;
  List.filter_map
    (fun (c : Snapshot.cell) ->
      match Hashtbl.find_opt old (c.Snapshot.cl_binary, c.Snapshot.cl_target) with
      | Some was when was <> c.Snapshot.cl_extended ->
        Some
          {
            fp_cell =
              {
                ci_binary = c.Snapshot.cl_binary;
                ci_target = c.Snapshot.cl_target;
              };
            fp_before = was;
            fp_after = c.Snapshot.cl_extended;
          }
      | _ -> None)
    after
  |> List.sort (fun a b -> compare_cells a.fp_cell b.fp_cell)

(* Per-change attribution: which of a changed atom's invalidated cells
   actually flipped, and in which direction. *)
type attribution = {
  at_change : change;
  at_to_ready : int;
  at_to_not_ready : int;
}

let attribute plan flips =
  let flipped = Hashtbl.create 16 in
  List.iter
    (fun f -> Hashtbl.replace flipped (f.fp_cell.ci_binary, f.fp_cell.ci_target) f.fp_after)
    flips;
  List.map
    (fun ch ->
      let to_ready, to_not_ready =
        List.fold_left
          (fun (r, n) c ->
            match Hashtbl.find_opt flipped (c.ci_binary, c.ci_target) with
            | Some true -> (r + 1, n)
            | Some false -> (r, n + 1)
            | None -> (r, n))
          (0, 0) ch.ch_cells
      in
      { at_change = ch; at_to_ready = to_ready; at_to_not_ready = to_not_ready })
    plan.pl_changes

(* -- metrics ----------------------------------------------------------- *)

(* ROADMAP item 1's cells-reevaluated-per-change metric, plus the fleet
   gauges the Prometheus expo surfaces as feam_drift_*. *)
let record_metrics plan =
  Feam_obs.Metrics.incr "drift.cells_reevaluated"
    ~by:(List.length plan.pl_affected);
  Feam_obs.Metrics.incr "drift.cells_total" ~by:plan.pl_cells_total

let record_epoch_gauges (s : Snapshot.t) =
  Feam_obs.Metrics.set_gauge "drift.epoch" (float_of_int s.Snapshot.epoch);
  Feam_obs.Metrics.set_gauge "drift.ready_cells"
    (float_of_int (Snapshot.ready_cells s));
  Feam_obs.Metrics.set_gauge "drift.readiness_rate" (Snapshot.readiness_rate s)

(* -- rendering --------------------------------------------------------- *)

let side = function None -> "(absent)" | Some v -> v

let render_change_line at =
  let ch = at.at_change in
  Printf.sprintf "  %s %s: %s -> %s [%s] invalidates %d cell%s%s\n"
    (Snapshot.owner_to_string ch.ch_owner)
    ch.ch_path (side ch.ch_a) (side ch.ch_b)
    (String.concat "," ch.ch_determinants)
    (List.length ch.ch_cells)
    (if List.length ch.ch_cells = 1 then "" else "s")
    (if at.at_to_ready + at.at_to_not_ready = 0 then ""
     else
       Printf.sprintf ", flipped %d not-ready->ready, %d ready->not-ready"
         at.at_to_ready at.at_to_not_ready)

let render_text plan flips =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "epoch diff %d -> %d: %d changed atom%s, %d of %d cells invalidated\n"
       plan.pl_epoch_a plan.pl_epoch_b
       (List.length plan.pl_changes)
       (if List.length plan.pl_changes = 1 then "" else "s")
       (List.length plan.pl_affected)
       plan.pl_cells_total);
  List.iter
    (fun at -> Buffer.add_string buf (render_change_line at))
    (attribute plan flips);
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "  cell %s: %s -> %s  [FLIPPED]\n" (cell_id_key f.fp_cell)
           (if f.fp_before then "ready" else "not-ready")
           (if f.fp_after then "ready" else "not-ready")))
    flips;
  Buffer.contents buf

let opt_str = function None -> Json.Null | Some v -> Json.Str v

let to_json plan flips =
  Json.Obj
    [
      ("epoch_a", Json.Int plan.pl_epoch_a);
      ("epoch_b", Json.Int plan.pl_epoch_b);
      ("cells_total", Json.Int plan.pl_cells_total);
      ("cells_affected", Json.Int (List.length plan.pl_affected));
      ( "changes",
        Json.List
          (List.map
             (fun at ->
               let ch = at.at_change in
               Json.Obj
                 [
                   ("owner", Json.Str (Snapshot.owner_to_string ch.ch_owner));
                   ("path", Json.Str ch.ch_path);
                   ("a", opt_str ch.ch_a);
                   ("b", opt_str ch.ch_b);
                   ( "determinants",
                     Json.List
                       (List.map (fun d -> Json.Str d) ch.ch_determinants) );
                   ("cells", Json.Int (List.length ch.ch_cells));
                   ("to_ready", Json.Int at.at_to_ready);
                   ("to_not_ready", Json.Int at.at_to_not_ready);
                 ])
             (attribute plan flips)) );
      ( "flips",
        Json.List
          (List.map
             (fun f ->
               Json.Obj
                 [
                   ("cell", Json.Str (cell_id_key f.fp_cell));
                   ("before", Json.Bool f.fp_before);
                   ("after", Json.Bool f.fp_after);
                 ])
             flips) );
    ]
