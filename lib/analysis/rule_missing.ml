(* Missing libraries, cross-checked against what the resolution model
   (§IV) could actually supply from the bundle: a name recorded as
   unlocatable that a bundled copy satisfies is stale bookkeeping; a
   name with no copy at all makes readiness depend entirely on the
   target site; and a requirement that is neither bundled nor recorded
   as unlocatable means the source-phase manifest is incomplete. *)

open Feam_core

let id = "unresolved-missing"

let check rule (ctx : Context.t) =
  let bundle = ctx.Context.bundle in
  let unlocatable = bundle.Bundle.unlocatable in
  let from_unlocatable =
    unlocatable
    |> List.filter (fun name -> not (Bdc.is_c_library name))
    |> List.map (fun name ->
           if Bundle.copies_for bundle name <> [] then
             Rule.finding rule ~level:Diagnose.Info ~subject:name
               ~fixit:"re-run the source phase to refresh the bundle manifest"
               "recorded as unlocatable at the source, yet the bundle \
                carries a copy that satisfies it"
           else
             Rule.finding rule ~subject:name
               ~fixit:
                 "obtain a copy from a site where the binary runs and \
                  re-bundle (FEAM's source phase automates this)"
               "no bundled copy: execution readiness depends entirely on \
                the target site providing it")
  in
  let uncovered =
    Context.requirements ctx
    |> List.filter_map (fun ((o : Context.objekt), name) ->
           if
             Bdc.is_c_library name
             || List.mem name unlocatable
             || Context.provider ctx name <> None
           then None
           else
             Some
               (Rule.finding rule ~subject:name
                  ~fixit:"re-run the source phase to complete the closure"
                  (Printf.sprintf
                     "required by %s but neither bundled nor recorded as \
                      unlocatable: the source-phase manifest is incomplete"
                     o.Context.obj_label)))
  in
  from_unlocatable @ uncovered

let rec rule =
  {
    Rule.id;
    title = "missing libraries vs. what the bundle can actually resolve";
    default_level = Feam_core.Diagnose.Warn;
    explain =
      "Cross-checks the bundle's unlocatable list against what the \
       resolution model (paper \194\167IV) can actually supply: a name \
       recorded as unlocatable that a bundled copy satisfies is stale \
       bookkeeping (info); a name with no copy at all makes readiness \
       depend entirely on the target site (warn); and a requirement \
       that is neither bundled nor recorded as unlocatable means the \
       source-phase manifest is incomplete (warn).\n\
       Fix: obtain the copy from a site where the binary runs and \
       re-bundle \226\128\148 FEAM's source phase automates this.";
    check = Rule.Cell (fun ctx -> check rule ctx);
  }
