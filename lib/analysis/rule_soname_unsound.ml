(* Validates the soname-major heuristic against the symbol closure.

   The library-level determinant (paper §III.D) accepts a closure when
   every DT_NEEDED name is answered by an object of the same soname
   major.  That acceptance is a heuristic: a library can keep its major
   and still drop an exported symbol.  This rule diffs the staged
   copies' exports against what the closure imports and reports every
   edge where the soname check says "ready" but the symbol walk proves
   otherwise — the acceptance was unsound, not merely incomplete. *)

module S = Feam_symcheck.Symcheck

let id = "soname-major-unsound"

let symbols_of misses =
  String.concat ", "
    (List.map (fun (m : S.miss) -> S.symbol_ref m.S.miss_symbol m.S.miss_version) misses)

(* Group the overturning misses by (importer, consulted provider) so
   each unsound acceptance edge is reported once. *)
let group_overturns misses =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (m : S.miss) ->
      let key = (m.S.miss_importer, m.S.miss_expected) in
      (match Hashtbl.find_opt tbl key with
      | None -> order := key :: !order
      | Some _ -> ());
      let prev = Option.value (Hashtbl.find_opt tbl key) ~default:[] in
      Hashtbl.replace tbl key (prev @ [ m ]))
    misses;
  List.rev_map (fun key -> (key, Hashtbl.find tbl key)) !order

let check rule (ctx : Context.t) =
  let r = Symscope.result ctx in
  group_overturns (S.overturns r)
  |> List.map (fun ((importer, expected), misses) ->
         match expected with
         | Some provider ->
           Rule.finding rule ~subject:provider
             ~fixit:
               "trust the symbol-level verdict over the soname match: \
                re-stage the provider from a build that exports the \
                symbols"
             (Printf.sprintf
                "satisfies the soname requirement of %s yet does not \
                 export %s: the soname-major acceptance is unsound here"
                importer (symbols_of misses))
         | None ->
           Rule.finding rule ~subject:importer
             ~fixit:
               "trust the symbol-level verdict over the soname match: \
                re-stage a closure built where the binary links"
             (Printf.sprintf
                "every DT_NEEDED is satisfied at the soname level, yet %s \
                 cannot bind: the soname-major acceptance is unsound for \
                 this closure"
                (symbols_of misses)))

let rec rule =
  {
    Rule.id;
    title = "soname-major acceptance refuted by the symbol closure";
    default_level = Feam_core.Diagnose.Warn;
    explain =
      "Diffs the staged copies' exports against what the closure \
       imports and reports every edge where the library-level \
       soname-major determinant (paper \194\167III.D) says \"ready\" \
       but the symbol walk proves otherwise: a library can keep its \
       major and still drop an exported symbol, making the acceptance \
       unsound rather than merely incomplete.\n\
       Fix: trust the symbol-level verdict over the soname match and \
       re-stage the provider from a build that exports the symbols.";
    check = Rule.Cell (fun ctx -> check rule ctx);
  }
