(** One pluggable static-analysis rule: an identifier, a one-line
    description for rule tables, the severity class it usually reports
    at, a long-form explanation for [feam lint --explain], and the
    check itself.  Rules are pure functions of their scope — a
    {!Context.t} for the cell tier, a {!Fleet.t} for the fleet tier —
    and never mutate the bundle, the sites, or the fleet. *)

(** Which view the check reads.  [Cell] rules run per bundle under
    [feam lint]; [Fleet] rules run once over the whole matrix under
    [feam audit]. *)
type scope =
  | Cell of (Context.t -> Feam_core.Diagnose.finding list)
  | Fleet of (Fleet.t -> Feam_core.Diagnose.finding list)

type t = {
  id : string;  (** stable kebab-case identifier, e.g. "isa-mismatch" *)
  title : string;  (** one line, for [feam lint --rules] and the README *)
  default_level : Feam_core.Diagnose.level;
  explain : string;
      (** long-form description + fixit guidance for [--explain] *)
  check : scope;
}

(** ["cell"] or ["fleet"], for rule tables. *)
val tier : t -> string

val is_fleet : t -> bool

(** Build a finding attributed to a rule, at the rule's default level
    unless overridden. *)
val finding :
  t ->
  ?level:Feam_core.Diagnose.level ->
  ?fixit:string ->
  subject:string ->
  string ->
  Feam_core.Diagnose.finding
