(** One pluggable static-analysis rule: an identifier, a one-line
    description for rule tables, the severity class it usually reports
    at, and the check itself.  Rules are pure functions of the
    {!Context.t}; they never mutate the bundle or the sites. *)

type t = {
  id : string;  (** stable kebab-case identifier, e.g. "isa-mismatch" *)
  title : string;  (** one line, for [feam lint --rules] and the README *)
  default_level : Feam_core.Diagnose.level;
  check : Context.t -> Feam_core.Diagnose.finding list;
}

(** Build a finding attributed to a rule, at the rule's default level
    unless overridden. *)
val finding :
  t ->
  ?level:Feam_core.Diagnose.level ->
  ?fixit:string ->
  subject:string ->
  string ->
  Feam_core.Diagnose.finding
