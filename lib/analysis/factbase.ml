(* The content-addressed fact base.  Every ELF payload the analysis
   layer touches — bundle roots, library copies, probes, depot objects —
   is keyed by its Chash and parsed exactly once per process; every
   later sighting of the same bytes recalls the interned facts.  The
   memo is deliberately process-global (like Bdc's describe memo): the
   803-cell matrix re-stages the same few hundred distinct objects
   thousands of times, and content identity makes the sharing safe. *)

open Feam_util

type facts = {
  fb_key : Feam_depot.Chash.t;
  fb_size : int;
  fb_spec : Feam_elf.Spec.t option;
  fb_parse_error : string option;
  fb_soname : string option;
  fb_needed : string list;
  fb_verneeds : Feam_elf.Spec.verneed list;
  fb_machine : Feam_elf.Types.machine option;
  fb_elf_class : Feam_elf.Types.elf_class option;
  fb_interp : string option;
  fb_exports : string list;
  fb_glibc_floor : Version.t option;
}

(* The oldest glibc that can host the object: the newest GLIBC_x
   version it binds from a C library.  Unparseable version strings
   (GLIBC_PRIVATE and friends) are the glibc-verneed rule's business,
   not a floor. *)
let glibc_floor (spec : Feam_elf.Spec.t) =
  spec.Feam_elf.Spec.verneeds
  |> List.concat_map (fun vn ->
         if Feam_core.Bdc.is_c_library vn.Feam_elf.Spec.vn_file then
           List.filter_map Feam_toolchain.Glibc.version_of_symbol
             vn.Feam_elf.Spec.vn_versions
         else [])
  |> function
  | [] -> None
  | v :: vs -> Some (List.fold_left Version.max v vs)

let sorted_exports (spec : Feam_elf.Spec.t) =
  Feam_elf.Spec.exports spec
  |> List.map (fun d -> d.Feam_elf.Spec.sym_name)
  |> List.sort_uniq String.compare

let extract key bytes =
  let spec, parse_error =
    match Feam_elf.Reader.spec_of_bytes bytes with
    | Ok spec -> (Some spec, None)
    | Error e -> (None, Some (Feam_elf.Reader.error_to_string e))
  in
  let field f = Option.bind spec f in
  {
    fb_key = key;
    fb_size = String.length bytes;
    fb_spec = spec;
    fb_parse_error = parse_error;
    fb_soname = field (fun s -> s.Feam_elf.Spec.soname);
    fb_needed =
      (match spec with None -> [] | Some s -> s.Feam_elf.Spec.needed);
    fb_verneeds =
      (match spec with None -> [] | Some s -> s.Feam_elf.Spec.verneeds);
    fb_machine = Option.map (fun s -> s.Feam_elf.Spec.machine) spec;
    fb_elf_class = Option.map (fun s -> s.Feam_elf.Spec.elf_class) spec;
    fb_interp = field (fun s -> s.Feam_elf.Spec.interp);
    fb_exports = (match spec with None -> [] | Some s -> sorted_exports s);
    fb_glibc_floor = field glibc_floor;
  }

module Tbl = Hashtbl.Make (struct
  type t = Feam_depot.Chash.t

  let equal = Feam_depot.Chash.equal
  let hash k = Hashtbl.hash (Feam_depot.Chash.to_hex k)
end)

let table : facts Tbl.t = Tbl.create 256

let facts_of_bytes bytes =
  let key = Feam_depot.Chash.of_bytes bytes in
  match Tbl.find_opt table key with
  | Some facts ->
    Feam_obs.Metrics.incr "elf.spec_memo.hit";
    Feam_obs.Metrics.incr ~by:facts.fb_size "elf.spec_memo.saved_bytes";
    facts
  | None ->
    Feam_obs.Metrics.incr "elf.spec_memo.miss";
    let facts = extract key bytes in
    Tbl.add table key facts;
    facts

let spec_of_bytes bytes =
  let facts = facts_of_bytes bytes in
  match (facts.fb_spec, facts.fb_parse_error) with
  | Some spec, _ -> Ok spec
  | None, Some err -> Error err
  | None, None -> Error "unparseable object"

let size () = Tbl.length table
let reset () = Tbl.reset table
