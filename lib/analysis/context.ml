(* One uniform view over a bundle for the lint rules.  Descriptions are
   what the source phase *recorded*; specs are a byte-level reparse of
   every embedded image through the content-addressed fact base —
   keeping the two channels separate is what lets the staleness rule
   compare them.  The fact base keys by content hash, so the matrix's
   thousands of sightings of the same few hundred distinct objects
   parse once each (elf.spec_memo.{hit,miss} count the sharing). *)

open Feam_util
open Feam_core

type kind = Root | Copy | Probe

type objekt = {
  obj_label : string;
  obj_origin : string;
  obj_kind : kind;
  obj_description : Description.t option;
  obj_bytes : string option;
  obj_spec : Feam_elf.Spec.t option;
  obj_parse_error : string option;
  obj_declared_size : int;
}

type target = {
  target_name : string option;
  target_machine : Feam_elf.Types.machine option;
  target_glibc : Version.t option;
}

type t = {
  bundle : Bundle.t;
  root : objekt;
  objects : objekt list;
  target : target option;
}

let make_target ?name ?machine ?glibc () =
  { target_name = name; target_machine = machine; target_glibc = glibc }

let target_of_site site =
  {
    target_name = Some (Feam_sysmodel.Site.name site);
    target_machine = Some (Feam_sysmodel.Site.machine site);
    target_glibc = Some (Feam_sysmodel.Site.glibc site);
  }

let parse_bytes = function
  | None -> (None, None)
  | Some bytes ->
    let facts = Factbase.facts_of_bytes bytes in
    (facts.Factbase.fb_spec, facts.Factbase.fb_parse_error)

let make_objekt ~label ~origin ~kind ~description ~bytes ~declared_size =
  let spec, parse_error = parse_bytes bytes in
  {
    obj_label = label;
    obj_origin = origin;
    obj_kind = kind;
    obj_description = description;
    obj_bytes = bytes;
    obj_spec = spec;
    obj_parse_error = parse_error;
    obj_declared_size = declared_size;
  }

(* Labels double as graph nodes and finding subjects, so they must be
   unique even if two copies answer to the same DT_NEEDED name. *)
let uniquify labels =
  let seen = Hashtbl.create 16 in
  List.map
    (fun l ->
      match Hashtbl.find_opt seen l with
      | None ->
        Hashtbl.add seen l 1;
        l
      | Some n ->
        Hashtbl.replace seen l (n + 1);
        Printf.sprintf "%s#%d" l (n + 1))
    labels

let of_bundle ?target (bundle : Bundle.t) =
  let root =
    make_objekt
      ~label:bundle.Bundle.binary_description.Description.path
      ~origin:bundle.Bundle.binary_description.Description.path ~kind:Root
      ~description:(Some bundle.Bundle.binary_description)
      ~bytes:bundle.Bundle.binary_bytes
      ~declared_size:bundle.Bundle.binary_declared_size
  in
  let copy_labels =
    uniquify (List.map (fun c -> c.Bdc.copy_request) bundle.Bundle.copies)
  in
  let copies =
    List.map2
      (fun label (c : Bdc.library_copy) ->
        make_objekt ~label ~origin:c.Bdc.copy_origin_path ~kind:Copy
          ~description:(Some c.Bdc.copy_description)
          ~bytes:(Some c.Bdc.copy_bytes)
          ~declared_size:c.Bdc.copy_declared_size)
      copy_labels bundle.Bundle.copies
  in
  let probes =
    List.map
      (fun (p : Bundle.probe) ->
        make_objekt
          ~label:("probe " ^ p.Bundle.probe_name)
          ~origin:p.Bundle.probe_name ~kind:Probe ~description:None
          ~bytes:(Some p.Bundle.probe_bytes)
          ~declared_size:p.Bundle.probe_declared_size)
      bundle.Bundle.probes
  in
  { bundle; root; objects = (root :: copies) @ probes; target }

let described t =
  List.filter_map
    (fun o -> Option.map (fun d -> (o, d)) o.obj_description)
    t.objects

let copies t = List.filter (fun o -> o.obj_kind = Copy) t.objects

let requirements t =
  described t
  |> List.concat_map (fun (o, d) ->
         List.map (fun name -> (o, name)) d.Description.needed)

(* A copy answers for the DT_NEEDED name it was gathered under even when
   its recorded soname is absent, hence the label check. *)
let provider t name =
  let requested = Soname.of_string name in
  let satisfies o =
    o.obj_label = name
    ||
    match o.obj_description with
    | None -> false
    | Some d -> (
      match (requested, d.Description.soname) with
      | Some required, Some provided -> Soname.satisfies ~provided ~required
      | _ -> false)
  in
  List.find_opt satisfies (copies t)

let dependency_edges t =
  requirements t
  |> List.filter_map (fun (o, name) ->
         match provider t name with
         | Some p when p.obj_label <> o.obj_label ->
           Some (o.obj_label, p.obj_label)
         | _ -> None)
