(* The pluggable rule registry.  Built-in rules are referenced
   explicitly (module initializers alone would never be linked), so the
   set is deterministic and self-documenting.  Both tiers live in one
   namespace: cell rules run per bundle under `feam lint`, fleet rules
   once per matrix under `feam audit`. *)

let rules : (string, Rule.t) Hashtbl.t = Hashtbl.create 16

let register (r : Rule.t) =
  if Hashtbl.mem rules r.Rule.id then
    invalid_arg (Printf.sprintf "Registry.register: duplicate rule id %S" r.Rule.id)
  else Hashtbl.replace rules r.Rule.id r

let find id = Hashtbl.find_opt rules id

let all () =
  Hashtbl.fold (fun _ r acc -> r :: acc) rules []
  |> List.sort (fun a b -> String.compare a.Rule.id b.Rule.id)

let cell_rules () = List.filter (fun r -> not (Rule.is_fleet r)) (all ())
let fleet_rules () = List.filter Rule.is_fleet (all ())
let ids () = List.map (fun r -> r.Rule.id) (all ())
let cell_ids () = List.map (fun r -> r.Rule.id) (cell_rules ())
let fleet_ids () = List.map (fun r -> r.Rule.id) (fleet_rules ())

let count () = Hashtbl.length rules

let markdown_table () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "| Rule | Tier | Default level | Checks |\n|---|---|---|---|\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "| `%s` | %s | %s | %s |\n" r.Rule.id (Rule.tier r)
           (Feam_core.Diagnose.level_to_string r.Rule.default_level)
           r.Rule.title))
    (all ());
  Buffer.contents buf

let () =
  List.iter register
    [
      Rule_glibc_verneed.rule;
      Rule_soname_major.rule;
      Rule_dep_cycle.rule;
      Rule_isa_closure.rule;
      Rule_interp.rule;
      Rule_rpath.rule;
      Rule_stale.rule;
      Rule_missing.rule;
      Rule_soname_parse.rule;
      Rule_symbol_unresolved.rule;
      Rule_symbol_interposed.rule;
      Rule_soname_unsound.rule;
      Rule_bundle_entry.rule;
      Rule_abi_skew.rule;
      Rule_fleet_orphan.rule;
      Rule_glibc_laggard.rule;
      Rule_depot_unreferenced.rule;
      Rule_stack_partition.rule;
    ]
