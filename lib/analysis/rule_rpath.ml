(* RPATH/RUNPATH hazards.  The staged copies of the resolution model are
   exposed through LD_LIBRARY_PATH; DT_RPATH (without a DT_RUNPATH)
   *precedes* LD_LIBRARY_PATH in ld.so's search order, so a source-site
   path baked into RPATH can shadow the staged copies at the target with
   whatever happens to live at that path.  Relative entries are worse:
   they resolve against the working directory of the eventual run. *)

let id = "rpath-escape"

let entries = function
  | None -> []
  | Some s -> String.split_on_char ':' s

let check_one rule ~has_copies ~label ~tag ~shadows_staging path_entries =
  path_entries
  |> List.concat_map (fun entry ->
         if entry = "" then
           [
             Rule.finding rule ~subject:label
               ~fixit:(Printf.sprintf "relink without the empty %s entry" tag)
               (Printf.sprintf
                  "empty %s entry resolves to the working directory of the \
                   run" tag);
           ]
         else if not (String.length entry > 0 && entry.[0] = '/') then
           if String.starts_with ~prefix:"$ORIGIN" entry then []
           else
             [
               Rule.finding rule ~level:Feam_core.Diagnose.Error ~subject:label
                 ~fixit:(Printf.sprintf "relink with an absolute %s" tag)
                 (Printf.sprintf
                    "relative %s entry %S resolves against the working \
                     directory at the target" tag entry);
             ]
         else if shadows_staging && has_copies then
           [
             Rule.finding rule ~subject:label
               ~fixit:
                 "relink with DT_RUNPATH (or no run path) so the staged \
                  copies on LD_LIBRARY_PATH keep precedence"
               (Printf.sprintf
                  "DT_RPATH entry %s precedes LD_LIBRARY_PATH and points \
                   outside the bundle: it can shadow the staged library \
                   copies at the target" entry);
           ]
         else [])

let check rule (ctx : Context.t) =
  let has_copies = Context.copies ctx <> [] in
  Context.described ctx
  |> List.concat_map (fun ((o : Context.objekt), d) ->
         let rpath = entries d.Feam_core.Description.rpath in
         let runpath = entries d.Feam_core.Description.runpath in
         (* DT_RPATH only takes effect when no DT_RUNPATH is present. *)
         check_one rule ~has_copies ~label:o.Context.obj_label ~tag:"DT_RPATH"
           ~shadows_staging:(runpath = []) rpath
         @ check_one rule ~has_copies ~label:o.Context.obj_label
             ~tag:"DT_RUNPATH" ~shadows_staging:false runpath)

let rec rule =
  {
    Rule.id;
    title = "RPATH/RUNPATH entries that escape the bundle or the filesystem";
    default_level = Feam_core.Diagnose.Warn;
    explain =
      "Audits DT_RPATH/DT_RUNPATH entries across the closure.  The \
       staged copies are exposed through LD_LIBRARY_PATH, and DT_RPATH \
       (absent a DT_RUNPATH) precedes LD_LIBRARY_PATH in ld.so's search \
       order: a source-site path baked into RPATH can shadow the staged \
       copies at the target with whatever lives at that path.  Relative \
       and empty entries are worse \226\128\148 they resolve against the \
       working directory of the eventual run (error).\n\
       Fix: relink with DT_RUNPATH (or no run path at all) and use only \
       absolute or $ORIGIN-relative entries.";
    check = Rule.Cell (fun ctx -> check rule ctx);
  }
