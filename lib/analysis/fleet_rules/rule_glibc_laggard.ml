(* Glibc laggards: sites whose C library trails what their candidate
   workload demands.  Each binary's glibc floor (its newest GLIBC_x
   binding, from the fact base) is the oldest C library that can host
   it; a site whose glibc sits below the floor of binaries that would
   otherwise migrate there silently shrinks the fleet's capacity. *)

open Feam_util

let id = "glibc-laggard"

let check rule (fleet : Fleet.t) =
  fleet.Fleet.sites
  |> List.concat_map (fun (s : Fleet.site) ->
         (* The site's candidate workload: binaries with a matrix cell
            targeting it. *)
         let candidates =
           fleet.Fleet.cells
           |> List.filter (fun c -> c.Fleet.cell_target = s.Fleet.site_name)
           |> List.map (fun c -> c.Fleet.cell_binary)
           |> List.sort_uniq compare
         in
         let demanding =
           candidates
           |> List.filter_map (fun id ->
                  List.find_opt
                    (fun (b : Fleet.binary) -> b.Fleet.bin_id = id)
                    fleet.Fleet.binaries)
           |> List.filter_map (fun (b : Fleet.binary) ->
                  match b.Fleet.bin_facts.Factbase.fb_glibc_floor with
                  | Some floor when Version.(floor > s.Fleet.site_glibc) ->
                    Some (b.Fleet.bin_id, floor)
                  | _ -> None)
         in
         match demanding with
         | [] -> []
         | (_, f0) :: rest ->
           let fleet_floor =
             List.fold_left (fun acc (_, f) -> Version.max acc f) f0 rest
           in
           [
             Rule.finding rule ~subject:s.Fleet.site_name
               ~fixit:
                 (Printf.sprintf
                    "upgrade the site's C library to at least %s, or steer \
                     the demanding binaries to newer sites"
                    (Version.to_string fleet_floor))
               (Printf.sprintf
                  "glibc %s trails the %s floor demanded by %d of %d \
                   candidate workload binaries: every one of their \
                   migrations here is predicted to fail on version bindings"
                  (Version.to_string s.Fleet.site_glibc)
                  (Version.to_string fleet_floor)
                  (List.length demanding) (List.length candidates));
           ])

let rec rule =
  {
    Rule.id;
    title = "site glibc trailing the floor its candidate workload demands";
    default_level = Feam_core.Diagnose.Warn;
    explain =
      "Computes each binary's glibc floor from the fact base (the newest \
       GLIBC_x symbol version it binds \226\128\148 the oldest C library \
       that can host it) and compares each site's glibc against the \
       floors of the binaries whose matrix cells target that site.  A \
       site trailing its candidate workload's floor silently shrinks \
       fleet capacity: every migration of a demanding binary there is \
       predicted to fail on version bindings.\n\
       Fix: upgrade the site's C library, or steer demanding binaries \
       to newer sites.";
    check = Rule.Fleet (fun fleet -> check rule fleet);
  }
