(* Cross-site ABI skew: the same library name observed at two or more
   sites with different payload bytes.  Content divergence alone is
   informational (rebuilds of the same source differ by build id); a
   divergence in the *exported symbol set* is the real hazard — a binary
   that links at one site can miss symbols at another even though every
   site claims to provide the library (cf. the MPI ABI standardization
   motivation in PAPERS.md). *)

let id = "abi-skew"

(* Distinct (key, exports) variants of one name, keyed for reporting:
   each variant lists the sites that carry it, sites sorted. *)
let variants obs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (l : Fleet.library) ->
      let key = Feam_depot.Chash.to_hex l.Fleet.lib_facts.Factbase.fb_key in
      let prev = Option.value (Hashtbl.find_opt tbl key) ~default:[] in
      Hashtbl.replace tbl key (l.Fleet.lib_site :: prev))
    obs;
  Hashtbl.fold (fun key sites acc -> (key, List.sort_uniq compare sites) :: acc) tbl []
  |> List.sort compare

let export_sets obs =
  List.map (fun (l : Fleet.library) -> l.Fleet.lib_facts.Factbase.fb_exports) obs
  |> List.sort_uniq compare

let check rule (fleet : Fleet.t) =
  Fleet.library_names fleet
  |> List.concat_map (fun name ->
         let obs = Fleet.observations fleet name in
         let sites =
           List.map (fun (l : Fleet.library) -> l.Fleet.lib_site) obs
           |> List.sort_uniq compare
         in
         let vs = variants obs in
         if List.length sites < 2 || List.length vs < 2 then []
         else
           let detail =
             vs
             |> List.map (fun (key, vsites) ->
                    Printf.sprintf "%s at %s" (String.sub key 0 12)
                      (String.concat "," vsites))
             |> String.concat "; "
           in
           if List.length (export_sets obs) > 1 then
             [
               Rule.finding rule ~subject:name
                 ~fixit:
                   "rebuild the library from one source at every site, or \
                    ship one canonical copy through the depot"
                 (Printf.sprintf
                    "%d sites carry %d distinct builds with different \
                     exported symbol sets (%s): a binary linking at one \
                     site can miss symbols at another"
                    (List.length sites) (List.length vs) detail);
             ]
           else
             [
               Rule.finding rule ~level:Feam_core.Diagnose.Info ~subject:name
                 (Printf.sprintf
                    "%d sites carry %d distinct builds with identical \
                     exports (%s): content skew only"
                    (List.length sites) (List.length vs) detail);
             ])

let rec rule =
  {
    Rule.id;
    title = "same library name, diverging content or exports across sites";
    default_level = Feam_core.Diagnose.Warn;
    explain =
      "Groups every observed copy of each library name by content hash \
       across all sites.  Two or more distinct builds of one name are \
       informational when their exported symbol sets agree (rebuild \
       skew); they are a warning when the export sets differ, because a \
       binary that links at one site can then miss symbols at another \
       even though every site nominally provides the library.\n\
       Fix: rebuild the library from one source everywhere, or ship one \
       canonical copy through the depot.";
    check = Rule.Fleet (fun fleet -> check rule fleet);
  }
