(* Depot housekeeping: stored objects no ready migration's transfer
   plan ever ships.  The depot interns every distinct object the corpus
   mentions, but only migrations predicted ready actually move bytes; an
   object staged solely for predicted-to-fail cells is dead weight. *)

let id = "depot-unreferenced"

let check rule (fleet : Fleet.t) =
  let dead =
    List.filter (fun (o : Fleet.store_object) -> not o.Fleet.sto_referenced)
      fleet.Fleet.store
  in
  dead
  |> List.map (fun (o : Fleet.store_object) ->
         let name =
           Option.value o.Fleet.sto_soname ~default:"(no soname)"
         in
         Rule.finding rule
           ~subject:(Feam_depot.Chash.short o.Fleet.sto_key)
           ~fixit:"feam depot gc sweeps objects no manifest pins"
           (Printf.sprintf
              "%s (%d bytes) is interned but shipped by no ready migration's \
               transfer plan"
              name o.Fleet.sto_size))

let rec rule =
  {
    Rule.id;
    title = "interned depot objects no ready migration ever ships";
    default_level = Feam_core.Diagnose.Info;
    explain =
      "Diffs the depot store listing against the union of every \
       extended-ready cell's transfer plan.  Only migrations predicted \
       ready actually move bytes, so an interned object shipped by no \
       ready cell is dead weight \226\128\148 staged solely for \
       migrations predicted to fail, or superseded by a newer build \
       everywhere.  Informational by default: unreferenced objects cost \
       disk, not correctness.\n\
       Fix: `feam depot gc` sweeps objects no manifest pins.";
    check = Rule.Fleet (fun fleet -> check rule fleet);
  }
