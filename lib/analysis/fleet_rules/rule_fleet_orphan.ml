(* Fleet orphans: binaries predicted strictly ready at zero target
   sites.  A per-cell verdict answers "can this binary move to that
   site"; only the fleet view can answer "can it move anywhere at all".
   An orphan binary is a stranded asset: when its home site retires,
   the workload dies with it. *)

let id = "fleet-orphan"

let check rule (fleet : Fleet.t) =
  fleet.Fleet.binaries
  |> List.concat_map (fun (b : Fleet.binary) ->
         let cells = Fleet.cells_of_binary fleet b.Fleet.bin_id in
         let ready = List.filter (fun c -> c.Fleet.cell_extended) cells in
         if ready <> [] then []
         else if cells = [] then
           [
             Rule.finding rule ~subject:b.Fleet.bin_id
               ~fixit:
                 "register the binary's MPI stack at another site so a \
                  migration target exists at all"
               (Printf.sprintf
                  "no site in the fleet offers a matching MPI stack: the \
                   binary is pinned to %s"
                  b.Fleet.bin_home);
           ]
         else
           [
             Rule.finding rule ~subject:b.Fleet.bin_id
               ~fixit:
                 "inspect the per-cell findings (feam lint over the \
                  bundle) for the blocking determinant; until one target \
                  clears, the binary cannot leave its home site"
               (Printf.sprintf
                  "predicted ready at 0 of %d candidate target sites: if \
                   %s retires, the workload dies with it"
                  (List.length cells) b.Fleet.bin_home);
           ])

let rec rule =
  {
    Rule.id;
    title = "binaries predicted ready at zero target sites";
    default_level = Feam_core.Diagnose.Warn;
    explain =
      "Scans every binary's row of the migration matrix and reports the \
       ones whose extended (EDC-tier) readiness verdict is negative at \
       every candidate target \226\128\148 or that have no candidate \
       target at all because no other site registers a matching MPI \
       stack.  Such a binary is a stranded asset: when its home site \
       retires, the workload dies with it.\n\
       Fix: run the per-cell lint over the binary's bundle to find the \
       blocking determinant, or register its MPI stack at another site.";
    check = Rule.Fleet (fun fleet -> check rule fleet);
  }
