(* MPI stack partitioning: implementations that split the fleet into
   non-migratable islands.  The matrix only has a cell where source and
   target share an MPI implementation, so an implementation registered
   at a single site strands every binary built against it, and a fleet
   whose sites fall into several connected components (under the
   shares-an-implementation relation) can never rebalance load across
   the component boundary. *)

let id = "stack-partition"

let stranded_impls rule (fleet : Fleet.t) =
  (* impl -> sites registering it *)
  let impl_sites = Hashtbl.create 8 in
  List.iter
    (fun (s : Fleet.site) ->
      List.iter
        (fun impl ->
          let prev =
            Option.value (Hashtbl.find_opt impl_sites impl) ~default:[]
          in
          Hashtbl.replace impl_sites impl (s.Fleet.site_name :: prev))
        s.Fleet.site_stacks)
    fleet.Fleet.sites;
  Hashtbl.fold (fun impl sites acc -> (impl, List.sort_uniq compare sites) :: acc)
    impl_sites []
  |> List.sort compare
  |> List.concat_map (fun (impl, sites) ->
         if List.length sites <> 1 then []
         else
           let users =
             fleet.Fleet.binaries
             |> List.filter (fun (b : Fleet.binary) ->
                    b.Fleet.bin_impl = Some impl)
           in
           [
             Rule.finding rule ~subject:impl
               ~fixit:
                 (Printf.sprintf
                    "install %s at a second site to give its binaries a \
                     migration target"
                    impl)
               (Printf.sprintf
                  "registered only at %s: %d binaries built against it \
                   have no migration target anywhere in the fleet"
                  (List.hd sites) (List.length users));
           ])

(* Connected components of sites under "shares an MPI implementation". *)
let islands rule (fleet : Fleet.t) =
  let sites = List.map (fun (s : Fleet.site) -> s.Fleet.site_name) fleet.Fleet.sites in
  let stacks_of name =
    match Fleet.find_site fleet name with
    | Some s -> s.Fleet.site_stacks
    | None -> []
  in
  let connected a b =
    List.exists (fun i -> List.mem i (stacks_of b)) (stacks_of a)
  in
  let component = Hashtbl.create 8 in
  let rec absorb root name =
    if not (Hashtbl.mem component name) then begin
      Hashtbl.replace component name root;
      List.iter
        (fun other ->
          if (not (Hashtbl.mem component other)) && connected name other then
            absorb root other)
        sites
    end
  in
  List.iter (fun s -> absorb s s) sites;
  let groups = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let root = Hashtbl.find component s in
      let prev = Option.value (Hashtbl.find_opt groups root) ~default:[] in
      Hashtbl.replace groups root (s :: prev))
    sites;
  let comps =
    Hashtbl.fold (fun _ members acc -> List.sort compare members :: acc)
      groups []
    |> List.sort compare
  in
  if List.length comps < 2 then []
  else
    [
      Rule.finding rule ~subject:"fleet"
        ~fixit:
          "install a common MPI implementation across the islands so \
           load can rebalance fleet-wide"
        (Printf.sprintf
           "the fleet splits into %d non-migratable islands under the \
            shared-MPI-stack relation: %s"
           (List.length comps)
           (String.concat " | "
              (List.map (fun c -> String.concat "," c) comps)));
    ]

let check rule (fleet : Fleet.t) =
  stranded_impls rule fleet @ islands rule fleet

let rec rule =
  {
    Rule.id;
    title = "MPI stacks splitting the fleet into non-migratable islands";
    default_level = Feam_core.Diagnose.Warn;
    explain =
      "Two checks over the site/stack registry.  First, an MPI \
       implementation registered at exactly one site strands every \
       binary built against it \226\128\148 the matrix only has a cell \
       where source and target share an implementation.  Second, the \
       sites' connected components under the shares-an-implementation \
       relation: a fleet that splits into several islands can never \
       rebalance load across the boundary, whatever the per-binary \
       verdicts say.\n\
       Fix: install a common MPI implementation across the islands (the \
       MPI ABI standardization effort exists precisely to make this \
       cheap).";
    check = Rule.Fleet (fun fleet -> check rule fleet);
  }
