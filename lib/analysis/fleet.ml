(* The fleet view a fleet-tier rule checks: pure data, populated by the
   evalharness audit builder (or by hand in tests).  All lists arrive
   sorted per the .mli contract; the accessors here preserve order. *)

type site = {
  site_name : string;
  site_machine : Feam_elf.Types.machine;
  site_glibc : Feam_util.Version.t;
  site_stacks : string list;
}

type library = {
  lib_name : string;
  lib_site : string;
  lib_facts : Factbase.facts;
}

type binary = {
  bin_id : string;
  bin_home : string;
  bin_impl : string option;
  bin_facts : Factbase.facts;
}

type cell = {
  cell_binary : string;
  cell_home : string;
  cell_target : string;
  cell_basic : bool;
  cell_extended : bool;
}

type store_object = {
  sto_key : Feam_depot.Chash.t;
  sto_soname : string option;
  sto_size : int;
  sto_referenced : bool;
}

type t = {
  sites : site list;
  binaries : binary list;
  libraries : library list;
  cells : cell list;
  store : store_object list;
}

let empty = { sites = []; binaries = []; libraries = []; cells = []; store = [] }

let cells_of_binary t id =
  List.filter (fun c -> c.cell_binary = id) t.cells

let observations t name =
  List.filter (fun l -> l.lib_name = name) t.libraries

let library_names t =
  List.map (fun l -> l.lib_name) t.libraries |> List.sort_uniq String.compare

let find_site t name = List.find_opt (fun s -> s.site_name = name) t.sites
