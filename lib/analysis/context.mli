(** What the lint rules see: one uniform view over a source-phase bundle
    — the application binary, every bundled library copy and probe, their
    recorded descriptions, and a fresh byte-level reparse of every
    embedded image — plus, optionally, facts about the intended target
    site.  Built once; every rule reads from it. *)

type kind = Root | Copy | Probe

type objekt = {
  obj_label : string;  (** unique display name used as finding subject *)
  obj_origin : string;  (** source-site path (or probe name) *)
  obj_kind : kind;
  obj_description : Feam_core.Description.t option;
      (** the description recorded in the bundle; [None] for probes *)
  obj_bytes : string option;  (** embedded ELF image, when carried *)
  obj_spec : Feam_elf.Spec.t option;  (** reparse of [obj_bytes] *)
  obj_parse_error : string option;
      (** set when [obj_bytes] is present but does not parse *)
  obj_declared_size : int;
}

(** Facts about the target site the bundle is headed for.  All optional:
    lint without a target still runs every structural rule. *)
type target = {
  target_name : string option;
  target_machine : Feam_elf.Types.machine option;
  target_glibc : Feam_util.Version.t option;
}

type t = {
  bundle : Feam_core.Bundle.t;
  root : objekt;
  objects : objekt list;  (** root, then copies, then probes *)
  target : target option;
}

val make_target :
  ?name:string ->
  ?machine:Feam_elf.Types.machine ->
  ?glibc:Feam_util.Version.t ->
  unit ->
  target

(** Target facts read off a simulated site. *)
val target_of_site : Feam_sysmodel.Site.t -> target

val of_bundle : ?target:target -> Feam_core.Bundle.t -> t

(** Objects carrying a recorded description (root and copies). *)
val described : t -> (objekt * Feam_core.Description.t) list

(** Bundled library copies only. *)
val copies : t -> objekt list

(** Every dependency requirement in the closure:
    (requiring object, DT_NEEDED name). *)
val requirements : t -> (objekt * string) list

(** The bundled copy that satisfies a DT_NEEDED name, applying the
    soname compatibility convention (§III.D); [None] when the bundle
    carries no satisfying copy. *)
val provider : t -> string -> objekt option

(** Adjacency of the dependency graph over object labels: edges from
    each described object to the bundled copies its DT_NEEDED entries
    resolve to. *)
val dependency_edges : t -> (string * string) list
