(* Imports the staged closure cannot bind.  Only definitive misses are
   reported — ones the symbol simulation proved cannot come from an
   object merely absent from the bundle (those belong to the
   library-level rules).  Strong (GLOBAL) misses abort the program at
   load time under ld.so's default eager binding of versioned symbols
   or at first call otherwise; weak misses legally bind to zero and are
   surfaced as information. *)

open Feam_core
module S = Feam_symcheck.Symcheck

let id = "symbol-unresolved"

let miss_finding rule ?level (m : S.miss) =
  let consulted =
    match m.S.miss_expected with
    | Some p -> Printf.sprintf " (consulted %s)" p
    | None -> ""
  in
  Rule.finding rule ?level
    ~subject:(S.symbol_ref m.S.miss_symbol m.S.miss_version)
    ~fixit:
      "re-stage a copy that exports the symbol from a site where the \
       binary runs (feam symcheck prints the full bind log)"
    (Printf.sprintf "imported by %s but exported by no object in the \
                     staged closure%s"
       m.S.miss_importer consulted)

let check rule (ctx : Context.t) =
  let r = Symscope.result ctx in
  let definitive = List.filter (fun m -> m.S.miss_definitive) in
  List.map (miss_finding rule) (definitive r.S.unresolved_strong)
  @ List.map
      (miss_finding rule ~level:Diagnose.Info)
      (definitive r.S.unresolved_weak)

let rec rule =
  {
    Rule.id;
    title = "imports no object in the staged closure exports";
    default_level = Feam_core.Diagnose.Error;
    explain =
      "Simulates ld.so's breadth-first binding over the staged closure \
       and reports imports no object exports.  Only definitive misses \
       are reported \226\128\148 ones proven not to come from an object \
       merely absent from the bundle (those belong to the library-level \
       rules).  Strong (GLOBAL) misses abort the program at load time or \
       first call (error); weak misses legally bind to zero (info).\n\
       Fix: re-stage a copy that exports the symbol from a site where \
       the binary runs; `feam symcheck` prints the full bind log.";
    check = Rule.Cell (fun ctx -> check rule ctx);
  }
