(** The content-addressed fact base (DESIGN §12): per-artifact facts —
    the parsed spec, exported/needed symbols, verneeds, soname, ISA,
    interp, glibc floor — extracted exactly once per distinct object and
    keyed by {!Feam_depot.Chash}.  Identical bytes observed anywhere in
    the fleet (any bundle, any site, any matrix cell) share one
    extraction; the memo surfaces as the [elf.spec_memo] cache in the
    observatory ([elf.spec_memo.hit] / [.miss] / [.saved_bytes]). *)

type facts = {
  fb_key : Feam_depot.Chash.t;  (** content identity of the bytes *)
  fb_size : int;
  fb_spec : Feam_elf.Spec.t option;  (** [None] when the bytes do not parse *)
  fb_parse_error : string option;
  fb_soname : string option;
  fb_needed : string list;  (** DT_NEEDED, link order *)
  fb_verneeds : Feam_elf.Spec.verneed list;
  fb_machine : Feam_elf.Types.machine option;
  fb_elf_class : Feam_elf.Types.elf_class option;
  fb_interp : string option;
  fb_exports : string list;  (** defined dynamic symbols, sorted, deduped *)
  fb_glibc_floor : Feam_util.Version.t option;
      (** newest GLIBC_x version bound from a C library — the oldest
          glibc that can host the object *)
}

(** Extract (or recall) the facts for a payload.  First sight of a
    content key parses and counts an [elf.spec_memo.miss]; every later
    sight of the same bytes is an [elf.spec_memo.hit] that re-reads
    nothing. *)
val facts_of_bytes : string -> facts

(** The memoized face of {!Feam_elf.Reader.spec_of_bytes}: same result,
    shared extraction.  {!Context.of_bundle} parses through this. *)
val spec_of_bytes : string -> (Feam_elf.Spec.t, string) result

(** Distinct objects currently interned. *)
val size : unit -> int

(** Drop every interned fact (counters are left alone — they belong to
    the metrics registry). *)
val reset : unit -> unit
