(* Unparseable shared-object names.  Every layer of the framework — the
   compatibility convention, the resolution model, the bundle index —
   keys on lib<base>.so.<major> names; a name that does not parse is
   invisible to all of them, and the hardened Feam_util.Soname parser
   now says exactly what is malformed instead of returning a silent
   None. *)

open Feam_util

let id = "soname-parse"

(* Names the dynamic loader itself owns don't follow the convention. *)
let exempt name =
  Feam_core.Bdc.is_c_library name
  || String.starts_with ~prefix:"ld-" name
  || String.starts_with ~prefix:"ld." name

let check_name rule ~role name =
  if exempt name then []
  else
    match Soname.of_string_result name with
    | Ok _ -> []
    | Error e ->
      [
        Rule.finding rule ~subject:name
          ~fixit:
            "rename the library to the lib<base>.so.<major>[.<minor>] \
             convention so version compatibility can be checked"
          (Printf.sprintf "%s does not parse as a shared-object name: %s"
             role
             (Soname.parse_error_to_string e));
      ]

let check rule (ctx : Context.t) =
  let requirement_findings =
    Context.requirements ctx
    |> List.concat_map (fun ((o : Context.objekt), name) ->
           check_name rule
             ~role:(Printf.sprintf "DT_NEEDED entry of %s" o.Context.obj_label)
             name)
  in
  let copy_findings =
    Context.copies ctx
    |> List.concat_map (fun (o : Context.objekt) ->
           (* strip the #n uniquifier duplicated requests carry *)
           let request =
             match String.index_opt o.Context.obj_label '#' with
             | Some i -> String.sub o.Context.obj_label 0 i
             | None -> o.Context.obj_label
           in
           check_name rule ~role:"bundled copy request" request)
  in
  (* one finding per distinct name *)
  let seen = Hashtbl.create 8 in
  List.filter
    (fun (f : Feam_core.Diagnose.finding) ->
      if Hashtbl.mem seen f.Feam_core.Diagnose.subject then false
      else begin
        Hashtbl.add seen f.Feam_core.Diagnose.subject ();
        true
      end)
    (requirement_findings @ copy_findings)

let rec rule =
  {
    Rule.id;
    title = "library names that defy the lib<base>.so.<major> convention";
    default_level = Feam_core.Diagnose.Warn;
    explain =
      "Flags shared-object names that do not parse as \
       lib<base>.so.<major>[.<minor>].  Every layer of the framework \
       \226\128\148 the compatibility convention, the resolution model, \
       the bundle index \226\128\148 keys on that convention; a name \
       outside it is invisible to version-compatibility checking.  \
       Loader-owned names (the C library, ld-*.so) are exempt.\n\
       Fix: rename the library to the convention so its major can be \
       compared across sites.";
    check = Rule.Cell (fun ctx -> check rule ctx);
  }
