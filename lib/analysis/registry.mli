(** The pluggable rule registry.  The built-in rule set — both tiers —
    registers itself at load time; downstream code can add its own rules
    with {!register} or run a curated subset via {!Engine.run}'s
    [?rules]. *)

(** @raise Invalid_argument on a duplicate rule id. *)
val register : Rule.t -> unit

val find : string -> Rule.t option

(** All registered rules, sorted by id. *)
val all : unit -> Rule.t list

(** The cell tier: rules that check one bundle's {!Context.t} under
    [feam lint]. *)
val cell_rules : unit -> Rule.t list

(** The fleet tier: rules that check the whole matrix's {!Fleet.t}
    under [feam audit]. *)
val fleet_rules : unit -> Rule.t list

(** Rule ids, sorted. *)
val ids : unit -> string list

val cell_ids : unit -> string list
val fleet_ids : unit -> string list

(** Number of registered rules — the single source the docs and
    [--list-rules] derive their counts from, so they cannot drift. *)
val count : unit -> int

(** The registered rules as a GitHub-flavored markdown table
    (Rule | Tier | Level | Checks), derived from the registry so the
    README table is generated, not hand-counted. *)
val markdown_table : unit -> string
