(** Shared scope construction for the symbol-level rules. *)

(** The staged binding scope of a bundle: the root binary plus the
    bundled copies reachable breadth-first over DT_NEEDED.  Probes stay
    out; C-library names are resolved by the target, never bundled. *)
val of_context : Context.t -> Feam_symcheck.Symcheck.member list

(** Run the symbol-binding simulation over {!of_context}'s scope, with
    C-library names exempt from the completeness requirement. *)
val result : Context.t -> Feam_symcheck.Symcheck.t
