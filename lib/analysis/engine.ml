(* Runs a rule set over a context and renders the results. *)

open Feam_core

let run ?rules ctx =
  Feam_obs.Trace.with_span "lint.run" @@ fun () ->
  let rules = match rules with Some r -> r | None -> Registry.cell_rules () in
  rules
  |> List.concat_map (fun r ->
         Feam_obs.Trace.with_span "lint.rule"
           ~attrs:[ ("rule", Feam_obs.Span.Str r.Rule.id) ]
         @@ fun () ->
         let findings =
           match r.Rule.check with
           | Rule.Cell check -> check ctx
           | Rule.Fleet _ -> []
         in
         if findings <> [] then
           Feam_obs.Metrics.incr
             ~by:(List.length findings)
             ~labels:[ ("rule", r.Rule.id) ]
             "lint.findings";
         Feam_obs.Trace.set_attr "findings"
           (Feam_obs.Span.Int (List.length findings));
         findings)
  |> List.stable_sort Diagnose.compare_finding

let run_fleet ?rules fleet =
  Feam_obs.Trace.with_span "audit.run" @@ fun () ->
  let rules = match rules with Some r -> r | None -> Registry.fleet_rules () in
  rules
  |> List.concat_map (fun r ->
         Feam_obs.Trace.with_span "audit.rule"
           ~attrs:[ ("rule", Feam_obs.Span.Str r.Rule.id) ]
         @@ fun () ->
         let findings =
           match r.Rule.check with
           | Rule.Fleet check -> check fleet
           | Rule.Cell _ -> []
         in
         if findings <> [] then
           Feam_obs.Metrics.incr
             ~by:(List.length findings)
             ~labels:[ ("rule", r.Rule.id) ]
             "audit.findings";
         Feam_obs.Trace.set_attr "findings"
           (Feam_obs.Span.Int (List.length findings));
         findings)
  |> List.stable_sort Diagnose.compare_finding

let count level findings =
  List.length
    (List.filter (fun (f : Diagnose.finding) -> f.Diagnose.level = level) findings)

let errors findings = count Diagnose.Error findings
let warnings findings = count Diagnose.Warn findings
let infos findings = count Diagnose.Info findings

let worst findings =
  List.fold_left
    (fun acc (f : Diagnose.finding) ->
      match acc with
      | None -> Some f.Diagnose.level
      | Some l ->
        if Diagnose.level_rank f.Diagnose.level < Diagnose.level_rank l then
          Some f.Diagnose.level
        else acc)
    None findings

let exit_code findings =
  match worst findings with
  | Some Diagnose.Error -> 2
  | Some Diagnose.Warn -> 1
  | Some Diagnose.Info | None -> 0

let fail_on_levels = [ "warn"; "error"; "never" ]

let gate ~fail_on findings =
  match fail_on with
  | "warn" -> Ok (exit_code findings)
  | "error" -> Ok (if exit_code findings = 2 then 2 else 0)
  | "never" -> Ok 0
  | other ->
    Error
      (Printf.sprintf "unknown --fail-on level %S (expected %s)" other
         (String.concat ", " fail_on_levels))

let plural n what = Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s")

let summary findings =
  Printf.sprintf "%s, %s, %d info"
    (plural (errors findings) "error")
    (plural (warnings findings) "warning")
    (infos findings)

let subject_line (ctx : Context.t) =
  let bundle = ctx.Context.bundle in
  let target =
    match ctx.Context.target with
    | Some { Context.target_name = Some n; _ } -> Printf.sprintf " -> %s" n
    | _ -> ""
  in
  Printf.sprintf "%s (bundled at %s, %d copies, %d probes)%s"
    bundle.Bundle.binary_description.Description.path bundle.Bundle.created_at
    (List.length bundle.Bundle.copies)
    (List.length bundle.Bundle.probes)
    target

let add_findings buf findings =
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (f : Diagnose.finding) ->
      addf "%-5s %-21s %s: %s\n"
        (Diagnose.level_to_string f.Diagnose.level)
        f.Diagnose.rule_id f.Diagnose.subject f.Diagnose.message;
      match f.Diagnose.fixit with
      | Some fix -> addf "      fix: %s\n" fix
      | None -> ())
    findings

let render_text ctx findings =
  let buf = Buffer.create 512 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "feam lint: %s\n" (subject_line ctx);
  add_findings buf findings;
  addf "%s\n" (summary findings);
  Buffer.contents buf

let fleet_line (fleet : Fleet.t) =
  Printf.sprintf
    "%d sites, %d binaries, %d library observations, %d cells, %d stored \
     objects"
    (List.length fleet.Fleet.sites)
    (List.length fleet.Fleet.binaries)
    (List.length fleet.Fleet.libraries)
    (List.length fleet.Fleet.cells)
    (List.length fleet.Fleet.store)

let render_fleet_text fleet findings =
  let buf = Buffer.create 512 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "feam audit: %s\n" (fleet_line fleet);
  add_findings buf findings;
  addf "%s\n" (summary findings);
  Buffer.contents buf

let fleet_to_json (fleet : Fleet.t) findings =
  let open Feam_util.Json in
  Obj
    [
      ( "fleet",
        Obj
          [
            ( "sites",
              List
                (List.map
                   (fun (s : Fleet.site) -> Str s.Fleet.site_name)
                   fleet.Fleet.sites) );
            ("binaries", Int (List.length fleet.Fleet.binaries));
            ("libraries", Int (List.length fleet.Fleet.libraries));
            ("cells", Int (List.length fleet.Fleet.cells));
            ("store_objects", Int (List.length fleet.Fleet.store));
          ] );
      ("findings", List (List.map Report.finding_to_json findings));
      ( "summary",
        Obj
          [
            ("errors", Int (errors findings));
            ("warnings", Int (warnings findings));
            ("infos", Int (infos findings));
            ("exit_code", Int (exit_code findings));
          ] );
    ]

let to_json ctx findings =
  let open Feam_util.Json in
  let bundle = ctx.Context.bundle in
  let target_json =
    match ctx.Context.target with
    | None -> Null
    | Some t ->
      Obj
        [
          ( "site",
            match t.Context.target_name with Some n -> Str n | None -> Null );
          ( "machine",
            match t.Context.target_machine with
            | Some m -> Str (Feam_elf.Types.machine_uname m)
            | None -> Null );
          ( "glibc",
            match t.Context.target_glibc with
            | Some v -> Str (Feam_util.Version.to_string v)
            | None -> Null );
        ]
  in
  Obj
    [
      ("binary", Str bundle.Bundle.binary_description.Description.path);
      ("bundled_at", Str bundle.Bundle.created_at);
      ("target", target_json);
      ("findings", List (List.map Report.finding_to_json findings));
      ( "summary",
        Obj
          [
            ("errors", Int (errors findings));
            ("warnings", Int (warnings findings));
            ("infos", Int (infos findings));
            ("exit_code", Int (exit_code findings));
          ] );
    ]
