(** Audit baselines: a suppression file of known findings so an audit
    gate only trips on *new* problems.  An entry is a (rule id, subject)
    pair — the stable coordinates of a finding; messages and levels are
    deliberately not part of the key so rewording a rule does not
    un-suppress its known findings.

    Wire format (DESIGN §12): a [FEAM-BASELINE 1] header line, then one
    [<rule-id>\t<subject>] line per entry, sorted, [#]-comments and
    blank lines ignored.  {!render} is byte-deterministic, so baselines
    round-trip and diff cleanly under version control. *)

type t

val empty : t

(** Entries as sorted (rule_id, subject) pairs. *)
val entries : t -> (string * string) list

val size : t -> int

(** A baseline covering exactly [findings]. *)
val of_findings : Feam_core.Diagnose.finding list -> t

val mem : t -> Feam_core.Diagnose.finding -> bool

(** Split findings into (new, suppressed) against the baseline. *)
val apply :
  t ->
  Feam_core.Diagnose.finding list ->
  Feam_core.Diagnose.finding list * Feam_core.Diagnose.finding list

val render : t -> string

(** Parse {!render}'s format; [Error] names the offending line. *)
val parse : string -> (t, string) result
