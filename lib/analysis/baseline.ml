(* Audit suppression baselines.  Keyed on (rule id, subject) only:
   stable across message rewording, deterministic to render, trivial to
   diff in version control. *)

module Pairs = Set.Make (struct
  type t = string * string

  let compare = compare
end)

type t = Pairs.t

let header = "FEAM-BASELINE 1"
let empty = Pairs.empty
let entries t = Pairs.elements t
let size = Pairs.cardinal

let key (f : Feam_core.Diagnose.finding) =
  (f.Feam_core.Diagnose.rule_id, f.Feam_core.Diagnose.subject)

let of_findings findings =
  List.fold_left (fun acc f -> Pairs.add (key f) acc) empty findings

let mem t f = Pairs.mem (key f) t

let apply t findings =
  List.partition (fun f -> not (mem t f)) findings

let render t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (header ^ "\n");
  List.iter
    (fun (rule_id, subject) ->
      Buffer.add_string buf (Printf.sprintf "%s\t%s\n" rule_id subject))
    (entries t);
  Buffer.contents buf

let parse text =
  match String.split_on_char '\n' text with
  | first :: rest when String.trim first = header ->
    let exception Bad of string in
    (try
       Ok
         (List.fold_left
            (fun acc line ->
              let line = String.trim line in
              if line = "" || String.length line > 0 && line.[0] = '#' then
                acc
              else
                match String.index_opt line '\t' with
                | None -> raise (Bad line)
                | Some i ->
                  let rule_id = String.sub line 0 i in
                  let subject =
                    String.sub line (i + 1) (String.length line - i - 1)
                  in
                  if rule_id = "" then raise (Bad line)
                  else Pairs.add (rule_id, subject) acc)
            empty rest)
     with Bad line ->
       Error
         (Printf.sprintf
            "baseline entry %S is not <rule-id>\\t<subject>" line))
  | _ -> Error (Printf.sprintf "baseline must start with %S" header)
