(* Unsafe bundle entry names.  The target phase stages entries at
   [staging ^ "/" ^ name], so a name with a ".." component escapes the
   staging directory, and two entries with the same name collide in it.
   Bundle_io.parse_checked rejects such artifacts outright with a typed
   error; this rule surfaces the same policy over bundles that were
   built in memory (or loaded through the legacy lenient path), naming
   each offending entry. *)

let id = "bundle-entry-unsafe"

let check_names rule ~what names =
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let flagged_dup : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  List.concat_map
    (fun name ->
      let traversal =
        if Feam_core.Bundle_io.name_traverses name then
          [
            Rule.finding rule ~subject:name
              ~fixit:"strip the directory components from the entry name"
              (Printf.sprintf
                 "%s name %S contains a \"..\" path component and would \
                  escape the staging directory"
                 what name);
          ]
        else []
      in
      let duplicate =
        if Hashtbl.mem seen name && not (Hashtbl.mem flagged_dup name) then begin
          Hashtbl.add flagged_dup name ();
          [
            Rule.finding rule ~subject:name
              ~fixit:"drop or rename the colliding entry"
              (Printf.sprintf
                 "%s name %S appears more than once and the copies would \
                  collide in the staging directory"
                 what name);
          ]
        end
        else []
      in
      Hashtbl.replace seen name ();
      traversal @ duplicate)
    names

let check rule (ctx : Context.t) =
  let b = ctx.Context.bundle in
  check_names rule ~what:"copy request"
    (List.map
       (fun (c : Feam_core.Bdc.library_copy) -> c.Feam_core.Bdc.copy_request)
       b.Feam_core.Bundle.copies)
  @ check_names rule ~what:"probe"
      (List.map
         (fun (p : Feam_core.Bundle.probe) -> p.Feam_core.Bundle.probe_name)
         b.Feam_core.Bundle.probes)

let rec rule =
  {
    Rule.id;
    title = "entry names that would escape or collide in the staging dir";
    default_level = Feam_core.Diagnose.Error;
    explain =
      "Checks every copy request and probe name for \"..\" path \
       components (which would escape the staging directory at the \
       target) and for duplicates (which would collide in it).  \
       Bundle_io.parse_checked rejects such artifacts outright with a \
       typed error; this rule surfaces the same policy over bundles \
       built in memory or loaded through the legacy lenient path.\n\
       Fix: strip directory components from entry names and drop or \
       rename colliding entries, then re-bundle.";
    check = Rule.Cell (fun ctx -> check rule ctx);
  }
