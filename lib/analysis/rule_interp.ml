(* PT_INTERP sanity: an executable whose requested dynamic loader is not
   the conventional one for its machine only runs where that exact
   loader path exists — a silent portability trap (32-bit x86 binaries
   on x86-64 sites being the era's classic).  A dynamically linked
   executable with no PT_INTERP at all cannot start anywhere. *)

let id = "interp-mismatch"

let check_spec rule ~label (spec : Feam_elf.Spec.t) =
  if spec.Feam_elf.Spec.file_type <> Feam_elf.Types.ET_EXEC then []
  else
    let conventional = Feam_elf.Types.default_interp spec.Feam_elf.Spec.machine in
    match spec.Feam_elf.Spec.interp with
    | None ->
      if spec.Feam_elf.Spec.needed = [] then []
      else
        [
          Rule.finding rule ~level:Feam_core.Diagnose.Error ~subject:label
            ~fixit:"relink the executable; the static linker normally sets \
                    PT_INTERP automatically"
            "dynamically linked executable carries no PT_INTERP: no site \
             can start it";
        ]
    | Some interp when interp <> conventional ->
      [
        Rule.finding rule ~subject:label
          ~fixit:
            (Printf.sprintf
               "relink against the standard loader, or ensure %s exists at \
                every target"
               interp)
          (Printf.sprintf
             "PT_INTERP requests %s but the conventional %s loader is %s"
             interp
             (Feam_elf.Types.machine_uname spec.Feam_elf.Spec.machine)
             conventional);
      ]
    | Some _ -> []

let check rule (ctx : Context.t) =
  ctx.Context.objects
  |> List.concat_map (fun (o : Context.objekt) ->
         match o.Context.obj_spec with
         | Some spec -> check_spec rule ~label:o.Context.obj_label spec
         | None -> [])

let rec rule =
  {
    Rule.id;
    title = "PT_INTERP missing or unconventional for the machine";
    default_level = Feam_core.Diagnose.Warn;
    explain =
      "Checks each executable's PT_INTERP against the conventional \
       dynamic-loader path for its machine.  An unconventional loader \
       path only runs where that exact path exists \226\128\148 a silent \
       portability trap (32-bit x86 binaries on x86-64 sites being the \
       era's classic) \226\128\148 and a dynamically linked executable \
       with no PT_INTERP at all cannot start anywhere (error).\n\
       Fix: relink against the standard loader, or guarantee the \
       requested loader path exists at every migration target.";
    check = Rule.Cell (fun ctx -> check rule ctx);
  }
