(** Runs a rule set over a context and renders the results — the
    library face of [feam lint].  Findings come back severe-first in a
    stable order; text, JSON and exit-code views are all derived from
    the same list, so the CLI gate and the prediction pipeline agree. *)

(** Run [rules] (default: every registered cell rule) over a context.
    Fleet rules in [rules] are skipped.  Findings are sorted
    severe-first, then by rule id and subject. *)
val run : ?rules:Rule.t list -> Context.t -> Feam_core.Diagnose.finding list

(** Run [rules] (default: every registered fleet rule) over the fleet
    view — the library face of [feam audit].  Cell rules in [rules] are
    skipped.  Same ordering contract as {!run}. *)
val run_fleet :
  ?rules:Rule.t list -> Fleet.t -> Feam_core.Diagnose.finding list

val errors : Feam_core.Diagnose.finding list -> int
val warnings : Feam_core.Diagnose.finding list -> int
val infos : Feam_core.Diagnose.finding list -> int

(** The most severe level present. *)
val worst : Feam_core.Diagnose.finding list -> Feam_core.Diagnose.level option

(** The CI-gate contract: 0 clean (infos allowed), 1 warnings, 2 errors. *)
val exit_code : Feam_core.Diagnose.finding list -> int

(** The valid [--fail-on] levels, for usage messages. *)
val fail_on_levels : string list

(** Apply a [--fail-on] gate to the findings: ["warn"] is {!exit_code}
    unchanged, ["error"] keeps only the error exit, ["never"] always
    passes.  Any other level is an error naming the valid set — the
    gate never silently accepts an unknown severity. *)
val gate :
  fail_on:string -> Feam_core.Diagnose.finding list -> (int, string) result

(** One-line tally, e.g. "2 errors, 1 warning, 0 info". *)
val summary : Feam_core.Diagnose.finding list -> string

(** Human-readable lint report. *)
val render_text : Context.t -> Feam_core.Diagnose.finding list -> string

(** Machine-readable lint report; parses back with {!Feam_util.Json}. *)
val to_json : Context.t -> Feam_core.Diagnose.finding list -> Feam_util.Json.t

(** One-line fleet inventory, the audit report's subject line. *)
val fleet_line : Fleet.t -> string

(** Human-readable audit report. *)
val render_fleet_text :
  Fleet.t -> Feam_core.Diagnose.finding list -> string

(** Machine-readable audit report. *)
val fleet_to_json :
  Fleet.t -> Feam_core.Diagnose.finding list -> Feam_util.Json.t
