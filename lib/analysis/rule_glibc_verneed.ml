(* Per-symbol C-library version bindings, checked object by object over
   the whole closure.  Sharper than the prediction model's max-version
   determinant (§III.C): every GLIBC_x binding of every object is vetted
   individually, so the report names the exact symbol version, the
   supplying file and the requiring object — and it also catches version
   strings that are not any known glibc release. *)

open Feam_util
open Feam_core

let id = "glibc-verneed"

let known_release v =
  List.exists (Version.equal v) Feam_toolchain.Glibc.release_history

let check_symbol rule ~target_glibc ~obj_label ~vn_file symbol =
  match Feam_toolchain.Glibc.version_of_symbol symbol with
  | None ->
    if symbol = "GLIBC_PRIVATE" then
      [
        Rule.finding rule ~subject:obj_label
          ~fixit:
            "rebuild the object against a public C-library interface; \
             GLIBC_PRIVATE only resolves within the exact glibc build \
             that produced it"
          (Printf.sprintf "binds GLIBC_PRIVATE symbols from %s" vn_file);
      ]
    else
      [
        Rule.finding rule ~subject:obj_label
          (Printf.sprintf "unrecognized C-library symbol version %S from %s"
             symbol vn_file);
      ]
  | Some v ->
    let unknown =
      if known_release v then []
      else
        [
          Rule.finding rule ~subject:obj_label
            (Printf.sprintf
               "%s from %s is not a known glibc release; the binding can \
                never be satisfied by a stock C library"
               symbol vn_file);
        ]
    in
    let too_new =
      match target_glibc with
      | Some tg when Version.(v > tg) ->
        [
          Rule.finding rule ~level:Diagnose.Error ~subject:obj_label
            ~fixit:
              (Printf.sprintf
                 "rebuild on a system with glibc <= %s, or migrate to a \
                  site providing glibc >= %s"
                 (Version.to_string tg) (Version.to_string v))
            (Printf.sprintf
               "requires symbol version %s from %s but the target provides \
                glibc %s"
               symbol vn_file (Version.to_string tg));
        ]
      | _ -> []
    in
    unknown @ too_new

let check rule (ctx : Context.t) =
  let target_glibc =
    Option.bind ctx.Context.target (fun t -> t.Context.target_glibc)
  in
  Context.described ctx
  |> List.concat_map (fun (o, d) ->
         d.Description.verneeds
         |> List.concat_map (fun (vn_file, versions) ->
                if Bdc.is_c_library vn_file then
                  List.concat_map
                    (check_symbol rule ~target_glibc
                       ~obj_label:o.Context.obj_label ~vn_file)
                    versions
                else []))

let rec rule =
  {
    Rule.id;
    title =
      "per-symbol glibc version bindings vs. the target C library, over \
       the whole closure";
    default_level = Feam_core.Diagnose.Warn;
    explain =
      "Walks every .gnu.version_r block of every object in the bundle and \
       vets each GLIBC_x symbol version individually: versions newer than \
       the target's C library are errors (the loader refuses to start the \
       program), GLIBC_PRIVATE bindings and version strings that match no \
       known glibc release are warned (they can only resolve against the \
       exact build that produced them).  Sharper than the prediction \
       model's max-version determinant (paper \194\167III.C), which only \
       compares the binary's newest binding.\n\
       Fix: rebuild the object on a system whose glibc is no newer than \
       the oldest target, or migrate only to sites providing at least the \
       bound version.";
    check = Rule.Cell (fun ctx -> check rule ctx);
  }
