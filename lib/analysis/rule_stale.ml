(* Bundle staleness: the description recorded at the source phase must
   match a fresh byte-level reparse of the embedded image.  Toolchains
   stamp every build with a distinct build id, so a description gathered
   from one build and bytes captured from another — a bundle refreshed
   half-way — disagree here first. *)

open Feam_core

let id = "stale-bundle"

let build_id_of (spec : Feam_elf.Spec.t) =
  List.find_opt
    (String.starts_with ~prefix:"GNU Build ID")
    spec.Feam_elf.Spec.comments

let refresh_fixit = "re-run the source phase to regenerate the bundle"

let describe_mismatches (d : Description.t) (spec : Feam_elf.Spec.t) =
  let soname_str = function
    | Some s -> Feam_util.Soname.to_string s
    | None -> "-"
  in
  List.filter_map
    (fun x -> x)
    [
      (if d.Description.machine <> spec.Feam_elf.Spec.machine then
         Some
           (Printf.sprintf "machine (recorded %s, image %s)"
              (Feam_elf.Types.machine_uname d.Description.machine)
              (Feam_elf.Types.machine_uname spec.Feam_elf.Spec.machine))
       else None);
      (if d.Description.elf_class <> spec.Feam_elf.Spec.elf_class then
         Some "word size"
       else None);
      (if
         soname_str d.Description.soname
         <> Option.value spec.Feam_elf.Spec.soname ~default:"-"
         && not
              (d.Description.soname = None && spec.Feam_elf.Spec.soname = None)
       then
         Some
           (Printf.sprintf "soname (recorded %s, image %s)"
              (soname_str d.Description.soname)
              (Option.value spec.Feam_elf.Spec.soname ~default:"-"))
       else None);
      (if d.Description.needed <> spec.Feam_elf.Spec.needed then
         Some
           (Printf.sprintf "DT_NEEDED (recorded [%s], image [%s])"
              (String.concat ", " d.Description.needed)
              (String.concat ", " spec.Feam_elf.Spec.needed))
       else None);
    ]

let check rule (ctx : Context.t) =
  ctx.Context.objects
  |> List.concat_map (fun (o : Context.objekt) ->
         let label = o.Context.obj_label in
         match (o.Context.obj_bytes, o.Context.obj_parse_error) with
         | Some _, Some e ->
           [
             Rule.finding rule ~subject:label ~fixit:refresh_fixit
               (Printf.sprintf "embedded image does not parse: %s" e);
           ]
         | Some bytes, None ->
           let size_findings =
             if o.Context.obj_declared_size < String.length bytes then
               [
                 Rule.finding rule ~subject:label ~fixit:refresh_fixit
                   (Printf.sprintf
                      "declared size %d is smaller than the embedded image \
                       (%d bytes): the manifest predates the image"
                      o.Context.obj_declared_size (String.length bytes));
               ]
             else []
           in
           let desc_findings =
             match (o.Context.obj_description, o.Context.obj_spec) with
             | Some d, Some spec -> (
               match describe_mismatches d spec with
               | [] -> []
               | mismatches ->
                 let provenance =
                   match build_id_of spec with
                   | Some bid -> Printf.sprintf " [image %s]" bid
                   | None -> ""
                 in
                 [
                   Rule.finding rule ~subject:label ~fixit:refresh_fixit
                     (Printf.sprintf
                        "recorded description is stale for the embedded \
                         image: %s%s"
                        (String.concat "; " mismatches)
                        provenance);
                 ])
             | _ -> []
           in
           size_findings @ desc_findings
         | None, _ -> [])

let rec rule =
  {
    Rule.id;
    title = "recorded descriptions that disagree with the embedded images";
    default_level = Feam_core.Diagnose.Error;
    explain =
      "Re-parses every embedded image and compares it with the \
       description the source phase recorded: machine, word size, \
       soname, DT_NEEDED set, and declared size must agree.  Toolchains \
       stamp every build with a distinct build id, so a description \
       gathered from one build and bytes captured from another \226\128\148 \
       a bundle refreshed half-way \226\128\148 disagree here first.\n\
       Fix: re-run the source phase so descriptions and images are \
       regenerated together.";
    check = Rule.Cell (fun ctx -> check rule ctx);
  }
