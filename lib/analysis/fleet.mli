(** The fleet view: what a fleet-tier rule sees.  Where a cell rule gets
    one {!Context.t} (one bundle, one target), a fleet rule gets the
    whole migration matrix at once — every site, every binary, every
    observed library copy, every (binary, target) cell verdict, and the
    depot store the plans draw from.  The record is pure data with no
    harness dependency; {!Feam_evalharness}'s audit builder populates it
    from the Table II corpus, and tests build synthetic fleets by hand.

    Determinism contract: builders must present every list sorted
    ([sites] by name, [binaries] by id, [libraries] by (name, site,
    key), [cells] by (binary, target), [store] by key) so rule output
    is byte-stable regardless of construction order. *)

type site = {
  site_name : string;
  site_machine : Feam_elf.Types.machine;
  site_glibc : Feam_util.Version.t;
  site_stacks : string list;  (** MPI implementation slugs, sorted *)
}

(** One library copy observed at a site (gathered into some binary's
    bundle there), reduced to its content-addressed facts. *)
type library = {
  lib_name : string;  (** the DT_NEEDED name it was gathered under *)
  lib_site : string;  (** home site it was observed at *)
  lib_facts : Factbase.facts;
}

type binary = {
  bin_id : string;
  bin_home : string;  (** site the binary was built at *)
  bin_impl : string option;  (** MPI implementation slug, if linked *)
  bin_facts : Factbase.facts;
}

(** One migration-matrix cell: [cell_basic] / [cell_extended] are the
    BDC- and EDC-tier readiness verdicts for shipping [cell_binary]
    from its home to [cell_target]. *)
type cell = {
  cell_binary : string;
  cell_home : string;
  cell_target : string;
  cell_basic : bool;
  cell_extended : bool;
}

(** One depot store object and whether any ready migration's transfer
    plan ever ships it (objects staged solely for predicted-to-fail
    cells stay unreferenced). *)
type store_object = {
  sto_key : Feam_depot.Chash.t;
  sto_soname : string option;
  sto_size : int;
  sto_referenced : bool;
}

type t = {
  sites : site list;
  binaries : binary list;
  libraries : library list;
  cells : cell list;
  store : store_object list;
}

val empty : t

(** Cells for one binary id, in matrix order. *)
val cells_of_binary : t -> string -> cell list

(** Distinct (site, facts-key) observations of one library name, sorted
    by (site, key). *)
val observations : t -> string -> library list

(** All library names observed anywhere, sorted. *)
val library_names : t -> string list

val find_site : t -> string -> site option
