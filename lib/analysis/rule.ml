(* One pluggable static-analysis rule. *)

type t = {
  id : string;
  title : string;
  default_level : Feam_core.Diagnose.level;
  check : Context.t -> Feam_core.Diagnose.finding list;
}

let finding rule ?level ?fixit ~subject message =
  {
    Feam_core.Diagnose.rule_id = rule.id;
    level = Option.value level ~default:rule.default_level;
    subject;
    message;
    fixit;
  }
