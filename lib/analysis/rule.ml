(* One pluggable static-analysis rule, in one of two tiers: cell rules
   see a single bundle's Context.t; fleet rules see the whole matrix. *)

type scope =
  | Cell of (Context.t -> Feam_core.Diagnose.finding list)
  | Fleet of (Fleet.t -> Feam_core.Diagnose.finding list)

type t = {
  id : string;
  title : string;
  default_level : Feam_core.Diagnose.level;
  explain : string;
  check : scope;
}

let tier rule = match rule.check with Cell _ -> "cell" | Fleet _ -> "fleet"
let is_fleet rule = match rule.check with Fleet _ -> true | Cell _ -> false

let finding rule ?level ?fixit ~subject message =
  {
    Feam_core.Diagnose.rule_id = rule.id;
    level = Option.value level ~default:rule.default_level;
    subject;
    message;
    fixit;
  }
