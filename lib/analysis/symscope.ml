(* Shared scope construction for the symbol-level rules: the root plus
   the bundled copies ld.so would actually load, breadth-first over
   DT_NEEDED — the staged closure as the resolution model stages it.
   Probes never join the scope (they are separate executables), and the
   C library is deliberately outside it: bundles never carry libc, so
   its absence is ignored rather than held against completeness. *)

open Feam_core

let of_context (ctx : Context.t) =
  let members = ref [] in
  let added = Hashtbl.create 16 in
  let add (o : Context.objekt) =
    match o.Context.obj_spec with
    | Some spec when not (Hashtbl.mem added o.Context.obj_label) ->
      Hashtbl.add added o.Context.obj_label ();
      members :=
        { Feam_symcheck.Symcheck.mb_label = o.Context.obj_label; mb_spec = spec }
        :: !members;
      Some spec
    | _ -> None
  in
  let seen = Hashtbl.create 16 in
  let queue = Queue.create () in
  let enqueue (spec : Feam_elf.Spec.t) =
    List.iter (fun n -> Queue.add n queue) spec.Feam_elf.Spec.needed
  in
  (match add ctx.Context.root with Some s -> enqueue s | None -> ());
  while not (Queue.is_empty queue) do
    let name = Queue.pop queue in
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      if not (Bdc.is_c_library name) then
        match Context.provider ctx name with
        | Some o -> ( match add o with Some s -> enqueue s | None -> ())
        | None -> ()
    end
  done;
  List.rev !members

let result ctx =
  Feam_symcheck.Symcheck.run ~ignore_needed:Bdc.is_c_library (of_context ctx)
