(* The same symbol defined by more than one object in the staged
   closure: ld.so binds every reference to the first definition in
   scope order, silently interposing the rest.  Usually a sign that two
   copies of the same code were staged at different builds — behaviour
   then depends on load order, which LD_LIBRARY_PATH staging is free to
   change. *)

module S = Feam_symcheck.Symcheck

let id = "symbol-interposed"

let check rule (ctx : Context.t) =
  let r = Symscope.result ctx in
  List.map
    (fun (i : S.interposition) ->
      Rule.finding rule ~subject:i.S.ip_symbol
        ~fixit:
          "keep a single provider of the symbol in the bundle so binding \
           does not depend on scope order"
        (Printf.sprintf
           "defined by %s and also by %s: the first definition in scope \
            order interposes the rest"
           i.S.ip_winner
           (String.concat ", " i.S.ip_shadowed)))
    r.S.interpositions

let rec rule =
  {
    Rule.id;
    title = "one symbol defined by several staged objects";
    default_level = Feam_core.Diagnose.Warn;
    explain =
      "Reports symbols defined by more than one object in the staged \
       closure.  ld.so binds every reference to the first definition in \
       scope order and silently interposes the rest \226\128\148 usually \
       a sign that two copies of the same code were staged from \
       different builds, so behaviour depends on load order, which \
       LD_LIBRARY_PATH staging is free to change.\n\
       Fix: keep a single provider of each symbol in the bundle.";
    check = Rule.Cell (fun ctx -> check rule ctx);
  }
