(* Word-size and machine mismatches anywhere in the closure.  The
   prediction model's ISA determinant (§III.A) checks the root binary
   against the site; a bundle can still carry a copy built for another
   machine or word size, which the loader rejects only at run time. *)

open Feam_core

let id = "isa-mismatch"

let pp_arch machine cls =
  Printf.sprintf "%s/%s"
    (Feam_elf.Types.machine_uname machine)
    (match cls with Feam_elf.Types.C32 -> "32-bit" | Feam_elf.Types.C64 -> "64-bit")

let check rule (ctx : Context.t) =
  let root_d = ctx.Context.root.Context.obj_description in
  let root_arch =
    Option.map
      (fun (d : Description.t) -> (d.Description.machine, d.Description.elf_class))
      root_d
  in
  let target_machine =
    Option.bind ctx.Context.target (fun t -> t.Context.target_machine)
  in
  let against_root =
    match root_arch with
    | None -> []
    | Some (rm, rc) ->
      Context.described ctx
      |> List.filter (fun ((o : Context.objekt), _) ->
             o.Context.obj_kind <> Context.Root)
      |> List.concat_map (fun ((o : Context.objekt), (d : Description.t)) ->
             if d.Description.machine <> rm || d.Description.elf_class <> rc
             then
               [
                 Rule.finding rule ~subject:o.Context.obj_label
                   ~fixit:
                     (Printf.sprintf
                        "replace the copy with a %s build from a matching \
                         site"
                        (pp_arch rm rc))
                   (Printf.sprintf
                      "bundled copy is %s but the application is %s; the \
                       loader will reject it"
                      (pp_arch d.Description.machine d.Description.elf_class)
                      (pp_arch rm rc));
               ]
             else [])
  in
  let against_target =
    match (root_arch, target_machine) with
    | Some (rm, _), Some tm when rm <> tm ->
      [
        Rule.finding rule ~subject:ctx.Context.root.Context.obj_label
          ~fixit:"recompile from source at the target, or pick a matching site"
          (Printf.sprintf
             "application targets %s but the target site is %s hardware"
             (Feam_elf.Types.machine_uname rm)
             (Feam_elf.Types.machine_uname tm));
      ]
    | _ -> []
  in
  against_root @ against_target

let rec rule =
  {
    Rule.id;
    title = "machine or word-size mismatches anywhere in the closure";
    default_level = Feam_core.Diagnose.Error;
    explain =
      "Checks machine and word size of every bundled copy against the \
       application, and the application against the target site's \
       hardware.  The prediction model's ISA determinant (paper \
       \194\167III.A) only compares the root binary with the site; a \
       bundle can still carry a copy built for another machine or word \
       size, which the loader rejects only at run time.\n\
       Fix: replace mismatched copies with builds from a matching site, \
       or recompile the application at the target.";
    check = Rule.Cell (fun ctx -> check rule ctx);
  }
