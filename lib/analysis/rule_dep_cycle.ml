(* Cycles in the bundled dependency graph.  ld.so tolerates cycles (it
   breaks them by load order), but a cycle inside a *bundle* means the
   staged copies initialize in an order the source site never exercised,
   and constructor-order bugs surface exactly there. *)

let id = "dep-cycle"

(* Canonical form of a cycle: rotated so the smallest label leads; used
   to report each distinct cycle once. *)
let canonical cycle =
  let smallest = List.fold_left min (List.hd cycle) cycle in
  let rec rotate = function
    | x :: rest when x = smallest -> x :: rest
    | x :: rest -> rotate (rest @ [ x ])
    | [] -> []
  in
  rotate cycle

let find_cycles edges =
  let succ label =
    List.filter_map (fun (a, b) -> if a = label then Some b else None) edges
  in
  let nodes =
    List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) edges)
  in
  let seen = Hashtbl.create 8 in
  let cycles = ref [] in
  let index_of x l =
    let rec go i = function
      | [] -> None
      | y :: rest -> if y = x then Some i else go (i + 1) rest
    in
    go 0 l
  in
  let rec dfs path node =
    match index_of node (List.rev path) with
    | Some i ->
      (* drop the lead-in, keep the loop *)
      let cycle = List.filteri (fun j _ -> j >= i) (List.rev path) in
      let c = canonical cycle in
      if not (Hashtbl.mem seen c) then begin
        Hashtbl.add seen c ();
        cycles := c :: !cycles
      end
    | None -> List.iter (dfs (node :: path)) (succ node)
  in
  List.iter (dfs []) nodes;
  List.rev !cycles

let check rule (ctx : Context.t) =
  find_cycles (Context.dependency_edges ctx)
  |> List.map (fun cycle ->
         let path = String.concat " -> " (cycle @ [ List.hd cycle ]) in
         Rule.finding rule ~subject:(List.hd cycle)
           (Printf.sprintf
              "dependency cycle %s: the staged copies will initialize in \
               an order the source site never exercised"
              path))

let rec rule =
  {
    Rule.id;
    title = "cycles in the bundled dependency graph";
    default_level = Feam_core.Diagnose.Warn;
    explain =
      "Finds cycles in the bundled dependency graph (DT_NEEDED edges \
       between staged copies).  ld.so tolerates cycles by breaking them \
       in load order, but a cycle inside a bundle means the staged \
       copies initialize in an order the source site never exercised, \
       and constructor-order bugs surface exactly there.  Each distinct \
       cycle is reported once, rotated to its smallest label.\n\
       Fix: break the cycle at the least essential edge (usually a \
       plugin or utility library that can be dlopen'd instead of \
       DT_NEEDED-linked).";
    check = Rule.Cell (fun ctx -> check rule ctx);
  }
