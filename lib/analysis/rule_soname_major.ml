(* Major-version conflicts inside the dependency closure: two objects
   that provide or require the same library base at *different* major
   versions.  By the soname convention (§III.D) majors are not API
   compatible, so whichever copy wins the search path breaks the loser's
   requirement — a failure the root-binary-only determinant never sees. *)

open Feam_util
open Feam_core

let id = "soname-major-conflict"

(* (base, major, "who role") entries from both sides of the graph. *)
let entries (ctx : Context.t) =
  let provided =
    Context.described ctx
    |> List.filter_map (fun ((o : Context.objekt), d) ->
           match d.Description.soname with
           | Some s -> (
             match Soname.major s with
             | Some m ->
               Some
                 ( Soname.base s,
                   m,
                   Printf.sprintf "%s (provides)" o.Context.obj_label )
             | None -> None)
           | None -> None)
  in
  let required =
    Context.requirements ctx
    |> List.filter_map (fun ((o : Context.objekt), name) ->
           match Soname.of_string name with
           | Some s -> (
             match Soname.major s with
             | Some m ->
               Some
                 ( Soname.base s,
                   m,
                   Printf.sprintf "%s (required by %s)" name
                     o.Context.obj_label )
             | None -> None)
           | None -> None)
  in
  provided @ required

let check rule (ctx : Context.t) =
  let by_base = Hashtbl.create 16 in
  List.iter
    (fun (base, major, who) ->
      let prev = Option.value (Hashtbl.find_opt by_base base) ~default:[] in
      Hashtbl.replace by_base base ((major, who) :: prev))
    (entries ctx);
  Hashtbl.fold
    (fun base majors acc ->
      let distinct =
        List.sort_uniq compare (List.map fst majors)
      in
      if List.length distinct < 2 then acc
      else
        let detail =
          majors |> List.rev
          |> List.map (fun (m, who) -> Printf.sprintf ".%d: %s" m who)
          |> String.concat "; "
        in
        Rule.finding rule ~subject:(base ^ ".so")
          ~fixit:
            (Printf.sprintf
               "align the closure on a single major version of %s, or drop \
                the stale copies from the bundle"
               base)
          (Printf.sprintf
             "the closure mixes incompatible major versions %s (%s)"
             (String.concat ", "
                (List.map (fun m -> Printf.sprintf ".%d" m) distinct))
             detail)
        :: acc)
    by_base []

let rec rule =
  {
    Rule.id;
    title =
      "the same library base at different major versions across the closure";
    default_level = Feam_core.Diagnose.Error;
    explain =
      "Collects every library base provided or required anywhere in the \
       dependency closure and flags bases that appear at two or more \
       major versions.  By the soname convention (paper \194\167III.D) \
       majors are not API compatible, so whichever copy wins the search \
       path breaks the loser's requirement \226\128\148 a failure the \
       root-binary-only determinant never sees.\n\
       Fix: align the whole closure on a single major version of the \
       library, or drop the stale copies from the bundle.";
    check = Rule.Cell (fun ctx -> check rule ctx);
  }
