(** Remediation guidance: turns a prediction's determinant record into
    concrete next steps, split by who can act (the scientist, the site
    administrators, or only a rebuild) — the paper's §IV observation
    about which determinants are fixable made actionable. *)

type severity =
  | User_fixable  (** the scientist can act alone *)
  | Needs_administrator  (** requires site privileges *)
  | Needs_rebuild  (** only recompilation can fix it *)

type remedy = { severity : severity; action : string }

val severity_to_string : severity -> string

(** {1 Static-analysis findings}

    The structured diagnostic emitted by the [feam lint] analysis layer
    ([lib/analysis]).  Declared here so reports can carry findings and
    remediation can consume them without a dependency on the analysis
    library itself. *)

type level = Error | Warn | Info

type finding = {
  rule_id : string;
  level : level;
  subject : string;  (** the object or name the finding is about *)
  message : string;
  fixit : string option;  (** a concrete suggested fix, when one exists *)
}

val level_to_string : level -> string

(** Inverse of {!level_to_string} (journal replay). *)
val level_of_string : string -> level option

(** Error < Warn < Info. *)
val level_rank : level -> int

(** Severe first, then rule id, then subject. *)
val compare_finding : finding -> finding -> int

(** Fold lint findings into remediation guidance: a finding with a fixit
    is user-fixable; errors without one need a rebuild, warnings without
    one an administrator.  Info findings carry no remedy. *)
val remedies_of_findings : finding list -> remedy list

(** Remedies for one prediction, in determinant order; empty when the
    prediction is ready. *)
val remedies : Predict.t -> remedy list

(** Render remediation guidance as report text. *)
val render : Predict.t -> string
