(* The Binary Description Component's output record: the information
   paper Figure 3 lists — ISA and file format, library name/version when
   the binary is itself a shared library, required shared libraries,
   C library version requirements, and the MPI stack / OS / toolchain
   provenance that built the binary. *)

open Feam_util

type t = {
  path : string;
  file_format : string; (* objdump format descriptor, e.g. "elf64-x86-64" *)
  machine : Feam_elf.Types.machine;
  elf_class : Feam_elf.Types.elf_class;
  soname : Soname.t option; (* set when the binary is a shared library *)
  needed : string list;
  rpath : string option;
  runpath : string option;
  verneeds : (string * string list) list;
  (* The binary's *required C library version*: newest glibc symbol
     version referenced (paper §III.C), not the build version. *)
  required_glibc : Version.t option;
  mpi : Mpi_ident.identification option;
  provenance : Objdump_parse.provenance;
}

let is_shared_library t = t.soname <> None

(* Embedded version of a shared library, extracted from its official
   shared object name (paper §V.A). *)
let library_version t = Option.map Soname.version t.soname

let required_glibc_of_verneeds verneeds =
  verneeds
  |> List.concat_map snd
  |> List.filter_map Feam_toolchain.Glibc.version_of_symbol
  |> List.fold_left
       (fun acc v ->
         match acc with None -> Some v | Some a -> Some (Version.max a v))
       None

let of_dynamic_info ~path ~provenance (info : Objdump_parse.dynamic_info) =
  match Objdump_parse.machine_of_format info.Objdump_parse.file_format with
  | None -> Error ("unrecognized file format: " ^ info.Objdump_parse.file_format)
  | Some (machine, elf_class) ->
    Ok
      {
        path;
        file_format = info.Objdump_parse.file_format;
        machine;
        elf_class;
        soname = Option.bind info.Objdump_parse.soname Soname.of_string;
        needed = info.Objdump_parse.needed;
        rpath = info.Objdump_parse.rpath;
        runpath = info.Objdump_parse.runpath;
        verneeds = info.Objdump_parse.verneeds;
        required_glibc = required_glibc_of_verneeds info.Objdump_parse.verneeds;
        mpi = Mpi_ident.identify info.Objdump_parse.needed;
        provenance;
      }

(* JSON round-trip for the flight recorder's journal.  Same contract
   as the bundle format: primitives are stored and the derived fields
   (machine, required C library version, MPI identification) are
   recomputed on load, so a journal written by one FEAM version parses
   under another as long as the primitives hold. *)

let to_json t =
  let open Json in
  let opt f = function None -> Null | Some v -> Str (f v) in
  Obj
    [
      ("path", Str t.path);
      ("format", Str t.file_format);
      ("soname", opt Soname.to_string t.soname);
      ("needed", List (List.map (fun n -> Str n) t.needed));
      ("rpath", opt Fun.id t.rpath);
      ("runpath", opt Fun.id t.runpath);
      ( "verneeds",
        Obj
          (List.map
             (fun (file, versions) ->
               (file, List (List.map (fun v -> Str v) versions)))
             t.verneeds) );
      ("compiler", opt Fun.id t.provenance.Objdump_parse.compiler_banner);
      ("build_os", opt Fun.id t.provenance.Objdump_parse.build_os);
    ]

let of_json json =
  let open Json in
  let str key = Option.bind (member key json) to_string_opt in
  let str_list key =
    match Option.bind (member key json) to_list_opt with
    | None -> []
    | Some items -> List.filter_map to_string_opt items
  in
  match (str "path", str "format") with
  | None, _ -> Error "description: missing path"
  | _, None -> Error "description: missing format"
  | Some path, Some file_format -> (
    match Objdump_parse.machine_of_format file_format with
    | None -> Error ("description: unknown file format: " ^ file_format)
    | Some (machine, elf_class) ->
      let verneeds =
        match member "verneeds" json with
        | Some (Obj fields) ->
          List.map
            (fun (file, versions) ->
              ( file,
                match to_list_opt versions with
                | None -> []
                | Some vs -> List.filter_map to_string_opt vs ))
            fields
        | _ -> []
      in
      let needed = str_list "needed" in
      Ok
        {
          path;
          file_format;
          machine;
          elf_class;
          soname = Option.bind (str "soname") Soname.of_string;
          needed;
          rpath = str "rpath";
          runpath = str "runpath";
          verneeds;
          required_glibc = required_glibc_of_verneeds verneeds;
          mpi = Mpi_ident.identify needed;
          provenance =
            {
              Objdump_parse.compiler_banner = str "compiler";
              build_os = str "build_os";
            };
        })

let pp ppf t =
  Fmt.pf ppf
    "@[<v>binary: %s@ format: %s@ soname: %a@ needed: %a@ required C library: \
     %a@ MPI implementation: %a@ built by: %a@ built on: %a@]"
    t.path t.file_format
    Fmt.(option ~none:(any "-") (using Soname.to_string string))
    t.soname
    Fmt.(list ~sep:(any ", ") string)
    t.needed
    Fmt.(option ~none:(any "unknown") (using Version.to_string string))
    t.required_glibc
    Fmt.(
      option ~none:(any "none detected")
        (using (fun i -> Feam_mpi.Impl.name i.Mpi_ident.impl) string))
    t.mpi
    Fmt.(option ~none:(any "unknown") string)
    t.provenance.Objdump_parse.compiler_banner
    Fmt.(option ~none:(any "unknown") string)
    t.provenance.Objdump_parse.build_os
