(* Deterministic replay: re-run the TEC's decision core purely from a
   journal's recorded evidence — no BDC description, no EDC discovery,
   no probes, no staging.  Because live evaluation and replay share the
   single pure [Tec.decide], a faithful journal reproduces the original
   report byte-for-byte; the journal is thereby a regression oracle for
   every future change to the prediction model's inputs handling. *)

open Feam_util
module Journal = Feam_flightrec.Journal

type outcome = {
  report : Report.t; (* rebuilt from recorded evidence *)
  rendered : string; (* Report.render of the rebuilt report *)
  recorded : string option; (* the report text the journal recorded *)
  matches : bool; (* rendered = recorded, byte for byte *)
}

let ( let* ) = Result.bind

let payload_exn ~kind journal =
  match Journal.payload ~kind journal with
  | Some data -> Ok data
  | None -> Error (Printf.sprintf "journal carries no %s payload" kind)

let parse_config journal =
  let* data = payload_exn ~kind:"config" journal in
  match Json.to_string_opt data with
  | None -> Error "config payload is not a string"
  | Some body -> (
    match Config.of_file_body body with
    | Ok config -> Ok config
    | Error errs -> Error ("config payload: " ^ String.concat "; " errs))

let str_member key json = Option.bind (Json.member key json) Json.to_string_opt

let list_member key json =
  match Option.bind (Json.member key json) Json.to_list_opt with
  | None -> []
  | Some items -> items

(* Recorded outcome of the MPI-stack determinant, when the journal
   reached it. *)
let stack_evidence journal =
  match Journal.last_decision ~determinant:"mpi_stack" journal with
  | None -> None
  | Some r ->
    let ev = Option.value (Journal.field "evidence" r) ~default:(Json.Obj []) in
    Some
      {
        Tec.se_functioning = str_member "functioning" ev;
        se_probe_failures =
          list_member "probe_failures" ev
          |> List.filter_map (fun f ->
                 match (str_member "stack" f, str_member "reason" f) with
                 | Some stack, Some reason -> Some (stack, reason)
                 | _ -> None);
      }

(* Recorded outcome of the shared-library determinant. *)
let libs_evidence journal =
  match Journal.last_decision ~determinant:"shared_libraries" journal with
  | None -> None
  | Some r ->
    let ev = Option.value (Journal.field "evidence" r) ~default:(Json.Obj []) in
    let pairs key a b =
      list_member key ev
      |> List.filter_map (fun item ->
             match (str_member a item, str_member b item) with
             | Some x, Some y -> Some (x, y)
             | _ -> None)
    in
    Some
      {
        Tec.le_missing =
          list_member "missing" ev |> List.filter_map Json.to_string_opt;
        le_staged = pairs "staged" "library" "path";
        le_unresolved = pairs "unresolved" "library" "reason";
      }

let finding_of_json json =
  match (str_member "rule" json, str_member "subject" json) with
  | Some rule_id, Some subject ->
    Some
      {
        Diagnose.rule_id;
        level =
          Option.value
            (Option.bind (str_member "level" json) Diagnose.level_of_string)
            ~default:Diagnose.Info;
        subject;
        message = Option.value (str_member "message" json) ~default:"";
        fixit = str_member "fixit" json;
      }
  | _ -> None

(* [of_journal journal] rebuilds the run's report from recorded
   evidence and compares it against the report text the journal itself
   recorded. *)
let of_journal journal =
  let* config = parse_config journal in
  let* description =
    let* data = payload_exn ~kind:"description" journal in
    Description.of_json data
  in
  let* discovery =
    let* data = payload_exn ~kind:"discovery" journal in
    Discovery.of_json data
  in
  let report_record = Journal.last ~kind:"report" journal in
  let site_name =
    let from_run =
      Option.bind (Journal.last ~kind:"run" journal) (Journal.str_field "site")
    in
    let from_report = Option.bind report_record (Journal.str_field "site") in
    match (from_run, from_report) with
    | Some s, _ | None, Some s -> Some s
    | None, None -> None
  in
  match site_name with
  | None -> Error "journal carries neither a run nor a report record"
  | Some site_name ->
    let binary =
      match Option.bind report_record (Journal.str_field "binary") with
      | Some b -> b
      | None -> description.Description.path
    in
    let findings =
      match report_record with
      | None -> []
      | Some r -> (
        match Journal.field "findings" r with
        | Some (Json.List items) -> List.filter_map finding_of_json items
        | _ -> [])
    in
    let prediction =
      Tec.decide ~config ~description ~discovery
        ?stack:(stack_evidence journal) ?libs:(libs_evidence journal) ()
    in
    let report =
      Report.with_findings
        (Report.make ~site_name ~binary prediction)
        findings
    in
    let rendered = Report.render report in
    let recorded =
      Option.bind report_record (Journal.str_field "text")
    in
    Ok { report; rendered; recorded; matches = recorded = Some rendered }

(* -- transfer-plan replay -------------------------------------------------- *)

(* Plans replay the same way predictions do: the journal records every
   deduplicated want (with its possession verdict at planning time) plus
   the rendered plan; replay re-runs the pure [Planner.compute] over the
   recorded wants and compares renderings byte-for-byte. *)

module Planner = Feam_depot.Planner

type plan_outcome = {
  plan : Planner.t; (* rebuilt from recorded wants *)
  plan_rendered : string;
  plan_recorded : string option; (* the text the journal recorded *)
  plan_matches : bool;
}

let has_plan journal = Journal.payload ~kind:"transfer_plan" journal <> None

let want_records journal =
  Journal.find_all ~kind:"evidence" journal
  |> List.filter (fun r ->
         Journal.str_field "stage" r = Some "depot"
         && Journal.str_field "kind" r = Some "want")

(* [plan_of_journal journal] — rebuild the journaled transfer plan. *)
let plan_of_journal journal =
  let* data = payload_exn ~kind:"transfer_plan" journal in
  let* site =
    match str_member "site" data with
    | Some s -> Ok s
    | None -> Error "transfer_plan payload carries no site"
  in
  let recorded =
    List.map
      (fun r -> Planner.want_of_fields r.Journal.fields)
      (want_records journal)
  in
  if List.mem None recorded then
    Error "journal carries a malformed depot want record"
  else
    let recorded = List.filter_map Fun.id recorded in
    let possessed_keys : (string, unit) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (w, possessed) ->
        if possessed then
          Hashtbl.replace possessed_keys
            (Feam_depot.Chash.to_hex w.Planner.w_key)
            ())
      recorded;
    let wants = List.map fst recorded in
    let plan =
      Planner.compute ~site
        ~possessed:(fun key ->
          Hashtbl.mem possessed_keys (Feam_depot.Chash.to_hex key))
        wants
    in
    let plan_rendered = Planner.render plan in
    let plan_recorded = str_member "text" data in
    Ok
      {
        plan;
        plan_rendered;
        plan_recorded;
        plan_matches = plan_recorded = Some plan_rendered;
      }
