(* The Environment Discovery Component's output record: the information
   paper Figure 4 lists — ISA format, operating system, C library
   version, available/loaded MPI stacks. *)

open Feam_util
open Feam_mpi

type via = Modules | Softenv | Path_search

type discovered_stack = {
  slug : string; (* "openmpi-1.4.3-intel" *)
  impl : Impl.t;
  impl_version : Version.t option;
  compiler_family : Compiler.family option;
  discovered_via : via;
}

type t = {
  env_type : [ `Target | `Guaranteed ];
  machine : Feam_elf.Types.machine option;
  elf_class : Feam_elf.Types.elf_class option;
  os : string option;          (* distribution, informational *)
  kernel : string option;      (* from /proc/version *)
  glibc : Version.t option;
  stacks : discovered_stack list;
  current_stack : discovered_stack option;
}

let via_to_string = function
  | Modules -> "Environment Modules"
  | Softenv -> "SoftEnv"
  | Path_search -> "path search"

(* Machine-readable discovery-method slugs (journal serialization). *)
let via_slug = function
  | Modules -> "modules"
  | Softenv -> "softenv"
  | Path_search -> "path-search"

let via_of_slug = function
  | "modules" -> Some Modules
  | "softenv" -> Some Softenv
  | "path-search" -> Some Path_search
  | _ -> None

(* Parse a stack slug of the conventional "impl-version-compiler" shape.
   Real sites reveal stacks through exactly such naming (paper §V.B:
   "/opt/openmpi-1.4.3-intel/lib/libmpi.so reveals that Open MPI is
   available for the Intel compiler"). *)
let parse_stack_slug ~via slug =
  match String.split_on_char '-' slug with
  | impl_slug :: rest -> (
    match Impl.of_slug impl_slug with
    | None -> None
    | Some impl ->
      let impl_version, compiler_family =
        match rest with
        | [ v; c ] -> (Version.of_string v, Compiler.family_of_slug c)
        | [ x ] -> (
          (* either a bare version or a bare compiler *)
          match Version.of_string x with
          | Some v -> (Some v, None)
          | None -> (None, Compiler.family_of_slug x))
        | _ -> (None, None)
      in
      Some { slug; impl; impl_version; compiler_family; discovered_via = via })
  | [] -> None

(* JSON round-trip for the flight recorder's journal: stacks are
   stored as slug + discovery method and re-derived through
   [parse_stack_slug] on load, mirroring the bundle format. *)

let stack_to_json s =
  Json.Obj
    [ ("slug", Json.Str s.slug); ("via", Json.Str (via_slug s.discovered_via)) ]

let stack_of_json json =
  let str key = Option.bind (Json.member key json) Json.to_string_opt in
  match str "slug" with
  | None -> None
  | Some slug ->
    let via =
      match Option.bind (str "via") via_of_slug with
      | Some via -> via
      | None -> Modules
    in
    parse_stack_slug ~via slug

let to_json t =
  let open Json in
  let opt f = function None -> Null | Some v -> Str (f v) in
  Obj
    [
      ( "env_type",
        Str (match t.env_type with `Target -> "target" | `Guaranteed -> "guaranteed") );
      ("machine", opt Feam_elf.Types.machine_uname t.machine);
      ("os", opt Fun.id t.os);
      ("kernel", opt Fun.id t.kernel);
      ("glibc", opt Version.to_string t.glibc);
      ("stacks", List (List.map stack_to_json t.stacks));
      ( "current_stack",
        match t.current_stack with None -> Null | Some s -> stack_to_json s );
    ]

let of_json json =
  let str key = Option.bind (Json.member key json) Json.to_string_opt in
  let machine = Option.bind (str "machine") Feam_elf.Types.machine_of_uname in
  Ok
    {
      env_type =
        (match str "env_type" with
        | Some "guaranteed" -> `Guaranteed
        | _ -> `Target);
      machine;
      elf_class = Option.map Feam_elf.Types.machine_class machine;
      os = str "os";
      kernel = str "kernel";
      glibc = Option.bind (str "glibc") Version.of_string;
      stacks =
        (match Option.bind (Json.member "stacks" json) Json.to_list_opt with
        | None -> []
        | Some items -> List.filter_map stack_of_json items);
      current_stack = Option.bind (Json.member "current_stack" json) stack_of_json;
    }

let pp_stack ppf s =
  Fmt.pf ppf "%s [%s%s, via %s]" (Impl.name s.impl)
    (match s.impl_version with
    | Some v -> "v" ^ Version.to_string v
    | None -> "version unknown")
    (match s.compiler_family with
    | Some f -> ", " ^ Compiler.family_name f
    | None -> "")
    (via_to_string s.discovered_via)

let pp ppf t =
  Fmt.pf ppf
    "@[<v>environment: %s@ ISA: %a@ OS: %a@ kernel: %a@ C library: %a@ MPI \
     stacks: %a@ loaded stack: %a@]"
    (match t.env_type with `Target -> "target site" | `Guaranteed -> "guaranteed execution site")
    Fmt.(option ~none:(any "unknown") (using Feam_elf.Types.machine_uname string))
    t.machine
    Fmt.(option ~none:(any "unknown") string)
    t.os
    Fmt.(option ~none:(any "unknown") string)
    t.kernel
    Fmt.(option ~none:(any "unknown") (using Version.to_string string))
    t.glibc
    Fmt.(list ~sep:(any "; ") pp_stack)
    t.stacks
    Fmt.(option ~none:(any "none") pp_stack)
    t.current_stack
