(* The determinant<-evidence dependency map and the resident evidence
   store.

   `Tec.decide`'s verdict over a (binary, target) cell is a pure
   function of two documents — the binary's description and the target
   site's discovery — plus the bundle and library-inventory facts the
   resolution walk consults.  Flattened through `Feam_flightrec.Diff`,
   those documents become (owner, dotted path, value) *evidence atoms*,
   and this module records which of the four determinants each atom
   feeds.  The map was born in the drift observatory
   (`lib/drift/invalidate.ml`); it lives here so that epoch drift and
   the resident prediction service share one invalidation engine: any
   consumer that keeps verdicts warm can diff fresh atoms against a
   [Store], map the changed paths to determinants, and re-evaluate only
   the cells those determinants reach.

   Soundness (DESIGN §13/§14): an atom whose path the map does not
   recognise conservatively invalidates every determinant, so a cell
   outside the affected set has byte-identical decision inputs and
   therefore a byte-identical verdict. *)

type owner = Site_owner of string | Binary_owner of string

let owner_to_string = function
  | Site_owner s -> "site " ^ s
  | Binary_owner b -> "binary " ^ b

let owner_rank = function Site_owner _ -> 0 | Binary_owner _ -> 1

let owner_name = function Site_owner s -> s | Binary_owner b -> b

let compare_owner a b =
  match Stdlib.compare (owner_rank a) (owner_rank b) with
  | 0 -> String.compare (owner_name a) (owner_name b)
  | c -> c

(* -- the determinant <- evidence dependency map ------------------------ *)

(* Determinant names follow the flight recorder's decision records
   (`Recorder.decision ~determinant:...` in [Tec]), in the paper's
   evaluation order. *)
let all_determinants = [ "isa"; "glibc"; "mpi_stack"; "shared_libraries" ]

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* Site-owned atoms reach a cell through the target-side EDC discovery,
   the probe run, and the ldd/resolution walk.  The target glibc also
   feeds probe compatibility and resolution filtering, so it fans out
   past the glibc determinant. *)
let site_determinants path =
  if
    has_prefix "discovery.machine" path
    || has_prefix "discovery.os" path
    || has_prefix "discovery.kernel" path
  then [ "isa" ]
  else if has_prefix "discovery.glibc" path then
    [ "glibc"; "mpi_stack"; "shared_libraries" ]
  else if
    has_prefix "discovery.stacks" path
    || has_prefix "discovery.current_stack" path
  then [ "mpi_stack"; "shared_libraries" ]
  else if has_prefix "discovery.env_type" path then []
  else if path = "ld_cache_current" || has_prefix "inventory." path then
    (* library visibility: the resolution walk, and the probe runs that
       load libraries under the candidate stack's session *)
    [ "mpi_stack"; "shared_libraries" ]
  else all_determinants

(* Binary-owned atoms reach every cell of that binary.  The MPI identity
   is derived from the needed list, so needed changes invalidate the
   stack determinant too; bundle elements carry the probes and the
   resolution model's library copies. *)
let binary_determinants path =
  if has_prefix "description.format" path then [ "isa" ]
  else if has_prefix "description.verneeds" path then [ "glibc" ]
  else if
    has_prefix "description.needed" path || has_prefix "description.soname" path
  then [ "mpi_stack"; "shared_libraries" ]
  else if
    has_prefix "description.rpath" path || has_prefix "description.runpath" path
  then [ "shared_libraries" ]
  else if has_prefix "description.compiler" path then [ "mpi_stack" ]
  else if
    has_prefix "description.build_os" path || has_prefix "description.path" path
  then []
  else if has_prefix "bundle." path then [ "mpi_stack"; "shared_libraries" ]
  else all_determinants (* digest, error, home, unknown paths: everything *)

let determinants_of_atom owner path =
  match owner with
  | Site_owner _ -> site_determinants path
  | Binary_owner _ -> binary_determinants path

(* -- atoms from the decision documents --------------------------------- *)

let discovery_atoms disc =
  List.map
    (fun (p, v) -> ("discovery." ^ p, v))
    (Feam_flightrec.Diff.atoms (Discovery.to_json disc))

let description_atoms d =
  List.map
    (fun (p, v) -> ("description." ^ p, v))
    (Feam_flightrec.Diff.atoms (Description.to_json d))

(* -- the resident evidence store --------------------------------------- *)

module Store = struct
  type change = {
    ev_owner : owner;
    ev_path : string;
    ev_before : string option;
    ev_after : string option;
    ev_determinants : string list;
  }

  (* Per-owner atom maps, each kept sorted by path so [atoms] and the
     change lists produced by [replace] are deterministic. *)
  type t = (owner, (string * string) list) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let sort_atoms atoms =
    List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) atoms

  let atoms (t : t) owner =
    Option.value ~default:[] (Hashtbl.find_opt t owner)

  let owners (t : t) =
    Hashtbl.fold (fun o _ acc -> o :: acc) t [] |> List.sort compare_owner

  let size (t : t) =
    Hashtbl.fold (fun _ atoms acc -> acc + List.length atoms) t 0

  let change owner path before after =
    {
      ev_owner = owner;
      ev_path = path;
      ev_before = before;
      ev_after = after;
      ev_determinants = determinants_of_atom owner path;
    }

  (* Merge-diff two path-sorted atom lists. *)
  let diff owner olds news =
    let rec go olds news acc =
      match (olds, news) with
      | [], [] -> List.rev acc
      | (p, v) :: olds, [] -> go olds [] (change owner p (Some v) None :: acc)
      | [], (p, v) :: news -> go [] news (change owner p None (Some v) :: acc)
      | (po, vo) :: olds', (pn, vn) :: news' ->
        let c = String.compare po pn in
        if c < 0 then go olds' news (change owner po (Some vo) None :: acc)
        else if c > 0 then go olds news' (change owner pn None (Some vn) :: acc)
        else if String.equal vo vn then go olds' news' acc
        else go olds' news' (change owner po (Some vo) (Some vn) :: acc)
    in
    go olds news []

  let replace (t : t) owner new_atoms =
    let news = sort_atoms new_atoms in
    let changes = diff owner (atoms t owner) news in
    Hashtbl.replace t owner news;
    changes

  let remove (t : t) owner =
    let changes = diff owner (atoms t owner) [] in
    Hashtbl.remove t owner;
    changes
end
