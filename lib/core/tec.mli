(** Target Evaluation Component (paper §V.C): matches the BDC's binary
    description against the EDC's environment description, probes
    candidate MPI stacks, applies the resolution model, and produces the
    prediction with its execution plan.

    Evaluation order follows the paper: ISA and C-library determinants
    first (fail fast), then MPI stack probing, then shared libraries with
    resolution. *)

type input = {
  config : Config.t;
  description : Description.t;
  binary_path : string option;
      (** the binary's location at the target, when it is present *)
  bundle : Bundle.t option;
  discovery : Discovery.t;
}

(** Recorded outcome of the MPI-stack determinant's effects: which
    advertised stack passed probes, and why the others failed. *)
type stack_evidence = {
  se_functioning : string option;
  se_probe_failures : (string * string) list;  (** slug, failure detail *)
}

(** Recorded outcome of the shared-library determinant's effects. *)
type libs_evidence = {
  le_missing : string list;
  le_staged : (string * string) list;  (** needed name -> staged path *)
  le_unresolved : (string * string) list;  (** name, why it failed *)
}

(** Compiler family of the binary, inferred from its .comment provenance;
    used to order candidate stacks so matching runtimes are preferred. *)
val binary_compiler_family : Description.t -> Feam_mpi.Compiler.family option

(** Candidate stacks: matching MPI implementation type only (§III.B),
    matching compiler family first. *)
val candidate_stacks :
  Description.t -> Discovery.t -> Discovery.discovered_stack list

(** The four determinants [decide] evaluates, in order, named as the
    flight recorder's decision records name them — the same vocabulary
    [Evidence.determinants_of_atom] maps evidence atoms back to. *)
val determinant_names : string list

(** The pure decision core, shared between live evaluation and
    `feam replay`: computes the prediction from the description, the
    discovery, and the recorded outcomes of the effectful steps.
    Stack/library evidence required by the decision but absent (a
    truncated or tampered journal) yields an explicit
    "incomplete evidence" not-ready verdict. *)
val decide :
  config:Config.t ->
  description:Description.t ->
  discovery:Discovery.t ->
  ?stack:stack_evidence ->
  ?libs:libs_evidence ->
  unit ->
  Predict.t

(** Run the full evaluation. *)
val evaluate :
  ?clock:Feam_util.Sim_clock.t ->
  ?depot:Resolve_model.depot ->
  Feam_sysmodel.Site.t ->
  Feam_sysmodel.Env.t ->
  input ->
  Predict.t
