(** The Binary Description Component's output record (paper Figure 3):
    ISA and file format, library name/version when the binary is itself a
    shared library, required shared libraries, C library version
    requirements, and build provenance. *)

type t = {
  path : string;
  file_format : string;  (** objdump format descriptor, e.g. "elf64-x86-64" *)
  machine : Feam_elf.Types.machine;
  elf_class : Feam_elf.Types.elf_class;
  soname : Feam_util.Soname.t option;
      (** set when the binary is a shared library *)
  needed : string list;  (** DT_NEEDED entries *)
  rpath : string option;
  runpath : string option;
  verneeds : (string * string list) list;
      (** version names required, per supplying object *)
  required_glibc : Feam_util.Version.t option;
      (** the binary's {e required C library version}: the newest glibc
          symbol version referenced (paper §III.C), not the build version *)
  mpi : Mpi_ident.identification option;
  provenance : Objdump_parse.provenance;
}

val is_shared_library : t -> bool

(** Embedded version of a shared library, extracted from its official
    shared object name (paper §V.A). *)
val library_version : t -> int list option

(** The newest GLIBC_* version among a verneed list. *)
val required_glibc_of_verneeds :
  (string * string list) list -> Feam_util.Version.t option

(** Build a description from parsed objdump output.
    Errors on unrecognized file-format descriptors. *)
val of_dynamic_info :
  path:string ->
  provenance:Objdump_parse.provenance ->
  Objdump_parse.dynamic_info ->
  (t, string) result

(** JSON round-trip for the flight recorder's journal: primitives are
    stored, derived fields recomputed by {!of_json} (same contract as
    the bundle format). *)
val to_json : t -> Feam_util.Json.t

val of_json : Feam_util.Json.t -> (t, string) result

val pp : t Fmt.t
