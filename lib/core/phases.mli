(** FEAM's two phases (paper §V, Figure 2).

    The {e source phase} (optional) runs at a guaranteed execution
    environment: BDC on the binary, EDC on the environment, probe
    generation and bundling.  The {e target phase} (required) runs at
    each target site and produces the prediction report.  Running both
    phases enables the extended prediction and the resolution model. *)

(** Directory a bundle-carried binary is materialized into at the target. *)
val staging_binary_dir : string

(** Run the source phase at a guaranteed execution environment.  Fails
    when the loaded MPI stack does not match the one the binary was built
    with (the environment cannot vouch for the binary, §V.B). *)
val source_phase :
  ?clock:Feam_util.Sim_clock.t ->
  Config.t ->
  Feam_sysmodel.Site.t ->
  Feam_sysmodel.Env.t ->
  binary_path:string ->
  (Bundle.t, string) result

(** Run the target phase.  Supply a [bundle] (extended mode; the binary
    travels inside it) and/or the binary's [binary_path] at the target
    (basic mode). *)
val target_phase :
  ?clock:Feam_util.Sim_clock.t ->
  ?depot:Resolve_model.depot ->
  Config.t ->
  Feam_sysmodel.Site.t ->
  Feam_sysmodel.Env.t ->
  ?bundle:Bundle.t ->
  ?binary_path:string ->
  unit ->
  (Report.t, string) result
