(* MPI stack probing (paper §III.B, §V.C): a stack is deemed usable only
   if a basic MPI program actually executes under it.

   Two probe kinds:
   - native: "hello world" compiled at the target with the candidate
     stack's wrappers — detects misconfigured stacks;
   - foreign: hello-world binaries shipped from the guaranteed execution
     environment, compiled with the *application's* stack — additionally
     detects ABI and floating-point defects that only bite foreign
     builds (the extended prediction's edge, §VI.C). *)

open Feam_sysmodel

let probe_dir = "/tmp/feam/probes"

type probe_result = (unit, string) result

(* The batch queue probes are submitted through: the user-configured
   serial/parallel queue when it exists at the site, the default (debug)
   queue otherwise (paper §V: the user specifies serial and parallel
   submission for the site). *)
let probe_queue config site ~parallel =
  let wanted =
    if parallel then config.Config.parallel_queue else config.Config.serial_queue
  in
  Option.bind wanted (Batch.queue_by_name (Site.batch site))

let run_binary ?clock config site env ~binary_path ~parallel =
  let mode =
    if parallel then Feam_dynlinker.Exec.Mpi config.Config.probe_np
    else Feam_dynlinker.Exec.Serial
  in
  let queue = probe_queue config site ~parallel in
  match Feam_dynlinker.Exec.run ?clock ?queue site env ~binary_path ~mode with
  | Feam_dynlinker.Exec.Success -> Ok ()
  | Feam_dynlinker.Exec.Failure f ->
    Error (Feam_dynlinker.Exec.failure_to_string f)

(* Expose the bundle's usable copies to a probe whose dependencies are
   missing under [env]: probes travel (or run) with the bundle's
   libraries, exactly like the application (paper SIV applied to the
   probe binaries themselves). *)
let resolve_probe_env ?clock config site env ~bundle ~target_glibc bytes =
  match bundle with
  | None -> env
  | Some bundle -> (
    match Feam_elf.Reader.parse bytes with
    | Error _ -> env
    | Ok parsed ->
      let spec = Feam_elf.Reader.spec parsed in
      let missing =
        spec.Feam_elf.Spec.needed
        |> List.filter (fun name ->
               not (Resolve_model.present_at_target site env name))
      in
      if missing = [] then env
      else
        let resolution =
          Resolve_model.resolve ?clock config site env ~bundle ~target_glibc
            ~binary_machine:spec.Feam_elf.Spec.machine
            ~binary_class:spec.Feam_elf.Spec.elf_class ~missing
        in
        resolution.Resolve_model.env)

(* Compile and run a native MPI hello world under [install]'s stack.
   When a bundle is available, the probe runs with its staged copies
   exposed — a natively compiled probe can need them too (e.g. a
   compiler runtime present on disk but absent from a stale loader
   cache). *)
let native ?clock ?bundle ?target_glibc config site env install : probe_result =
  Feam_obs.Trace.with_span "probe.native" @@ fun () ->
  (* [target_glibc] is the discovered C-library version, when known *)
  if not (Site.tools site).Tools.c_compiler then
    Error "native compilation not possible"
  else
    let env = Modules_tool.load_stack env install in
    match
      Feam_toolchain.Compile.compile_mpi_to ?clock site install
        Feam_toolchain.Compile.hello_world_mpi ~dir:probe_dir
    with
    | Error e -> Error (Feam_toolchain.Compile.error_to_string e)
    | Ok path ->
      let env =
        match Vfs.find (Site.vfs site) path with
        | Some { Vfs.kind = Vfs.Elf bytes; _ } ->
          resolve_probe_env ?clock config site env ~bundle ~target_glibc bytes
        | _ -> env
      in
      run_binary ?clock config site env ~binary_path:path ~parallel:true

(* Stage and run a shipped hello-world probe under [install]'s stack.
   The probe travelled with the bundle, so the bundle's library copies
   travel with it: any of its dependencies missing at the target (the
   application's compiler runtime, typically) are resolved from the
   bundle before the run, exactly as for the application itself. *)
let foreign ?clock config site env install ~(bundle : Bundle.t) ~target_glibc
    (probe : Bundle.probe) : probe_result =
  Feam_obs.Trace.with_span "probe.foreign"
    ~attrs:[ ("probe", Feam_obs.Span.Str probe.Bundle.probe_name) ]
  @@ fun () ->
  let env = Modules_tool.load_stack env install in
  let path = probe_dir ^ "/" ^ probe.Bundle.probe_name ^ ".shipped" in
  Vfs.add ~declared_size:probe.Bundle.probe_declared_size (Site.vfs site) path
    (Vfs.Elf probe.Bundle.probe_bytes);
  Cost.charge clock
    (Cost.copy_per_mb
    *. (float_of_int probe.Bundle.probe_declared_size /. 1048576.0));
  let env =
    resolve_probe_env ?clock config site env ~bundle:(Some bundle) ~target_glibc
      probe.Bundle.probe_bytes
  in
  run_binary ?clock config site env ~binary_path:path ~parallel:true

(* Full stack test: native probe when possible, then every shipped probe
   compiled with a matching implementation.  A stack passes only if all
   applicable probes pass; when no probe can be run at all the stack's
   mere presence cannot be verified and we report that. *)
let test_stack ?clock config site env install ~(bundle : Bundle.t option)
    ~target_glibc : probe_result =
  Feam_obs.Trace.with_span "probe.test_stack"
    ~attrs:
      [ ("stack", Feam_obs.Span.Str (Stack_install.module_name install)) ]
  @@ fun () ->
  let record result =
    (match result with
    | Ok () ->
      Feam_obs.Metrics.incr "edc.probe_successes";
      Feam_obs.Trace.set_attr "result" (Feam_obs.Span.Str "ok")
    | Error why ->
      Feam_obs.Metrics.incr "edc.probe_failures";
      Feam_obs.Trace.set_attr "result" (Feam_obs.Span.Str "failed");
      Feam_obs.Trace.set_attr "failure" (Feam_obs.Span.Str why));
    Feam_flightrec.Recorder.evidence ~stage:"probe" ~kind:"test_stack"
      [
        ( "stack",
          Feam_util.Json.Str (Stack_install.module_name install) );
        ( "result",
          Feam_util.Json.Str
            (match result with Ok () -> "ok" | Error _ -> "failed") );
        ( "failure",
          match result with
          | Ok () -> Feam_util.Json.Null
          | Error why -> Feam_util.Json.Str why );
      ];
    result
  in
  record
  @@
  let native_result =
    if (Site.tools site).Tools.c_compiler then
      Some (native ?clock ?bundle ?target_glibc config site env install)
    else None
  in
  let foreign_results =
    match bundle with
    | None -> []
    | Some b ->
      b.Bundle.probes
      |> List.map (fun p ->
             ( p.Bundle.probe_stack_slug,
               foreign ?clock config site env install ~bundle:b ~target_glibc p ))
  in
  match native_result with
  | Some (Error e) -> Error ("native probe failed: " ^ e)
  | _ -> (
    match
      List.find_opt (fun (_, r) -> Result.is_error r) foreign_results
    with
    | Some (slug, Error e) ->
      Error (Printf.sprintf "shipped probe (built with %s) failed: %s" slug e)
    | Some (_, Ok ()) -> assert false
    | None ->
      if native_result = None && foreign_results = [] then
        Error "no probe available: cannot verify the stack functions"
      else Ok ())
