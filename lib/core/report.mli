(** The user-facing output of a target phase (paper §V.C): the
    prediction, the reasons when execution is deemed impossible, and —
    when the site is predicted ready — the matching configuration details
    plus a script that sets them up automatically on execution. *)

type t = {
  site_name : string;
  binary : string;
  prediction : Predict.t;
  setup_script : string option;  (** present when predicted ready *)
  findings : Diagnose.finding list;
      (** static-analysis findings attached by the lint layer ([feam
          lint] / [feam predict --lint]), severe first *)
}

val prediction : t -> Predict.t
val findings : t -> Diagnose.finding list

(** Attach (replace) the static-analysis findings of a report. *)
val with_findings : t -> Diagnose.finding list -> t

(** Generate the setup script for a ready plan: module loads,
    LD_LIBRARY_PATH exports for staged copies, and the launch line. *)
val make_setup_script : Predict.plan -> binary:string -> string

val make :
  ?findings:Diagnose.finding list ->
  site_name:string ->
  binary:string ->
  Predict.t ->
  t

(** JSON form of one lint finding (shared with [feam lint] output). *)
val finding_to_json : Diagnose.finding -> Feam_util.Json.t

(** Machine-readable form of the report (extension: tooling output). *)
val to_json : t -> Feam_util.Json.t

(** Render the full human-readable report. *)
val render : t -> string

(** Journal the finished report to the flight recorder: the recorded
    text is the byte-level target [feam replay] must reproduce.
    Call again after {!with_findings} — replay reads the last record. *)
val journal : t -> unit
