(* The resolution model (paper §IV): missing shared libraries can often
   be supplied by making a copy from the guaranteed execution environment
   available at runtime.  Each candidate copy is vetted by recursively
   applying the prediction model to it — a shared library is a binary
   too: its ISA must match, its C library requirements must be met at the
   target, and its own dependencies must be present or themselves
   resolvable.  Usable copies are staged and exposed through the runtime
   environment. *)

open Feam_util
open Feam_sysmodel

type rejection =
  | No_copy_available
  | Copy_wrong_isa
  | Copy_clib_incompatible of { copy_requires : Version.t; target_has : Version.t option }
  | Copy_dependency_unresolvable of string

let rejection_slug = function
  | No_copy_available -> "no_copy"
  | Copy_wrong_isa -> "wrong_isa"
  | Copy_clib_incompatible _ -> "clib_incompatible"
  | Copy_dependency_unresolvable _ -> "dependency"

let rejection_to_string = function
  | No_copy_available -> "no copy available in the bundle"
  | Copy_wrong_isa -> "copy was built for a different ISA"
  | Copy_clib_incompatible { copy_requires; target_has } ->
    Printf.sprintf "copy requires C library %s, target has %s"
      (Version.to_string copy_requires)
      (match target_has with Some v -> Version.to_string v | None -> "unknown")
  | Copy_dependency_unresolvable dep ->
    Printf.sprintf "copy's own dependency %s cannot be resolved" dep

type outcome = {
  staged : (string * string) list;         (* needed name -> staged path *)
  staged_keys : (string * string) list;    (* needed name -> depot key hex *)
  failed : (string * rejection) list;
  env : Env.t;                              (* with staging dir exposed *)
}

(* A depot handle: staged copies are interned into the shared store, and
   transfer cost is charged only for objects the target site does not
   already hold (the per-site possession index). *)
type depot = {
  depot_store : Feam_depot.Store.t;
  depot_possession : Feam_depot.Planner.Possession.index;
}

let depot ~store ~possession =
  { depot_store = store; depot_possession = possession }

(* The loader's view of the site: LD_LIBRARY_PATH, then the cache
   directories as `ldconfig -p` reports them (reading the cache, not
   ld.so.conf — so a stale cache is seen for what it is), then the
   defaults. *)
let search_dirs_for_name site env =
  Env.ld_library_path env @ Site.ld_cache_dirs site @ Site.default_lib_dirs site

let present_at_target site env name =
  Feam_dynlinker.Search.locate_in_dirs site (search_dirs_for_name site env) name
  <> None

(* [resolve ?clock config site env ~bundle ~target_glibc ~binary_machine
   ~missing] — attempt to resolve every name in [missing] from the
   bundle's copies. *)
let resolve ?clock ?depot config site env ~(bundle : Bundle.t) ~target_glibc
    ~binary_machine ~binary_class ~missing =
  Feam_obs.Ledger.with_stage "resolve.resolve" @@ fun () ->
  Feam_obs.Trace.with_span "resolve.resolve"
    ~attrs:[ ("missing", Feam_obs.Span.Int (List.length missing)) ]
  @@ fun () ->
  let staging = config.Config.staging_dir in
  let vfs = Site.vfs site in
  (* Verdict memo; names currently being vetted are assumed usable so
     that dependency cycles between copies resolve. *)
  let memo : (string, (Bdc.library_copy, rejection) result) Hashtbl.t =
    Hashtbl.create 16
  in
  let visiting : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec vet name : (Bdc.library_copy, rejection) result =
    match Hashtbl.find_opt memo name with
    | Some verdict -> verdict
    | None ->
      if Hashtbl.mem visiting name then
        (* cycle: optimistically usable; the partner copy is being vetted *)
        match Bundle.copies_for bundle name with
        | copy :: _ -> Ok copy
        | [] -> Error No_copy_available
      else begin
        Hashtbl.add visiting name ();
        let verdict =
          match Bundle.copies_for bundle name with
          | [] -> Error No_copy_available
          | copy :: _ ->
            let d = copy.Bdc.copy_description in
            if
              not
                (d.Description.machine = binary_machine
                && d.Description.elf_class = binary_class)
            then Error Copy_wrong_isa
            else if
              not
                (Predict.clib_rule ~required:d.Description.required_glibc
                   ~available:target_glibc)
            then
              Error
                (Copy_clib_incompatible
                   {
                     copy_requires =
                       Option.value d.Description.required_glibc
                         ~default:(Version.of_ints [ 0 ]);
                     target_has = target_glibc;
                   })
            else begin
              (* The copy's own dependencies: present at the target, the
                 C library (already vetted via the version rule), or
                 recursively resolvable from the bundle. *)
              let dep_problem =
                d.Description.needed
                |> List.find_map (fun dep ->
                       if Bdc.is_c_library dep then None
                       else if present_at_target site env dep then None
                       else
                         match vet dep with
                         | Ok _ -> None
                         | Error _ -> Some dep)
              in
              match dep_problem with
              | Some dep -> Error (Copy_dependency_unresolvable dep)
              | None -> Ok copy
            end
        in
        Hashtbl.remove visiting name;
        Hashtbl.replace memo name verdict;
        verdict
      end
  in
  let staged = ref [] in
  let staged_keys = ref [] in
  let failed = ref [] in
  let stage_copy name (copy : Bdc.library_copy) =
    let path = staging ^ "/" ^ name in
    Vfs.add ~declared_size:copy.Bdc.copy_declared_size vfs path
      (Vfs.Elf copy.Bdc.copy_bytes);
    let charge () =
      Cost.charge clock
        (Cost.copy_per_mb
        *. (float_of_int copy.Bdc.copy_declared_size /. 1048576.0))
    in
    (match depot with
    | None -> charge ()
    | Some d ->
      (* Stage via the depot: intern the image, then ship it only if the
         target site does not already hold the object. *)
      let cd = copy.Bdc.copy_description in
      let _, key =
        Feam_depot.Store.intern d.depot_store
          ~meta:
            (Feam_depot.Store.meta
               ?soname:(Option.map Soname.to_string cd.Description.soname)
               ~origin:copy.Bdc.copy_origin_path
               ~size:copy.Bdc.copy_declared_size ())
          copy.Bdc.copy_bytes
      in
      let site_name = Site.name site in
      if
        Feam_depot.Planner.Possession.mem d.depot_possession ~site:site_name
          key
      then Feam_obs.Metrics.incr "resolve.depot_reused"
      else begin
        charge ();
        Feam_depot.Planner.Possession.add d.depot_possession ~site:site_name
          key
      end;
      staged_keys := (name, Feam_depot.Chash.to_hex key) :: !staged_keys);
    Feam_obs.Metrics.incr "resolve.libraries_copied";
    Feam_obs.Trace.event "staged"
      ~attrs:[ ("library", Feam_obs.Span.Str name) ];
    staged := (name, path) :: !staged
  in
  List.iter
    (fun name ->
      match vet name with
      | Ok copy -> stage_copy name copy
      | Error r ->
        Feam_obs.Metrics.incr "resolve.failures"
          ~labels:[ ("reason", rejection_slug r) ];
        Feam_obs.Trace.event "rejected"
          ~attrs:
            [
              ("library", Feam_obs.Span.Str name);
              ("reason", Feam_obs.Span.Str (rejection_slug r));
            ];
        failed := (name, r) :: !failed)
    missing;
  (* Usable copies may themselves need staged dependencies that were not
     in [missing] (absent transitively); stage every vetted-usable copy
     whose name is not otherwise present. *)
  Hashtbl.iter
    (fun name verdict ->
      match verdict with
      | Ok copy
        when (not (List.mem_assoc name !staged))
             && not (present_at_target site env name) ->
        stage_copy name copy
      | _ -> ())
    memo;
  let env =
    if !staged <> [] then Env.prepend_path env "LD_LIBRARY_PATH" staging else env
  in
  Feam_obs.Trace.set_attr "staged" (Feam_obs.Span.Int (List.length !staged));
  Feam_obs.Trace.set_attr "failed" (Feam_obs.Span.Int (List.length !failed));
  let outcome =
    {
      staged = List.rev !staged;
      staged_keys = List.rev !staged_keys;
      failed = List.rev !failed;
      env;
    }
  in
  Feam_flightrec.Recorder.decision ~determinant:"resolve"
    ~verdict:(if outcome.failed = [] then "pass" else "fail")
    [
      ("missing", Json.List (List.map (fun m -> Json.Str m) missing));
      ( "staged",
        Json.List
          (List.map
             (fun (name, path) ->
               Json.Obj [ ("library", Json.Str name); ("path", Json.Str path) ])
             outcome.staged) );
      ( "rejected",
        Json.List
          (List.map
             (fun (name, r) ->
               Json.Obj
                 [
                   ("library", Json.Str name);
                   ("reason", Json.Str (rejection_slug r));
                   ("detail", Json.Str (rejection_to_string r));
                 ])
             outcome.failed) );
    ];
  outcome
