(** Deterministic replay: re-run the TEC's pure decision core from a
    journal's recorded evidence — no discovery, no probes, no staging.
    Live evaluation and replay share the single {!Tec.decide}, so a
    faithful journal reproduces the original report byte-for-byte. *)

type outcome = {
  report : Report.t;  (** rebuilt from recorded evidence *)
  rendered : string;  (** {!Report.render} of the rebuilt report *)
  recorded : string option;  (** the report text the journal recorded *)
  matches : bool;  (** [rendered] equals [recorded], byte for byte *)
}

(** Rebuild the run's report from a parsed journal and compare it with
    the journal's own recorded report text.  Errors when the journal
    lacks the config/description/discovery payloads replay needs. *)
val of_journal : Feam_flightrec.Journal.t -> (outcome, string) result
