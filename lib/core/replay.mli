(** Deterministic replay: re-run the TEC's pure decision core from a
    journal's recorded evidence — no discovery, no probes, no staging.
    Live evaluation and replay share the single {!Tec.decide}, so a
    faithful journal reproduces the original report byte-for-byte. *)

type outcome = {
  report : Report.t;  (** rebuilt from recorded evidence *)
  rendered : string;  (** {!Report.render} of the rebuilt report *)
  recorded : string option;  (** the report text the journal recorded *)
  matches : bool;  (** [rendered] equals [recorded], byte for byte *)
}

(** Rebuild the run's report from a parsed journal and compare it with
    the journal's own recorded report text.  Errors when the journal
    lacks the config/description/discovery payloads replay needs. *)
val of_journal : Feam_flightrec.Journal.t -> (outcome, string) result

type plan_outcome = {
  plan : Feam_depot.Planner.t;  (** rebuilt from recorded wants *)
  plan_rendered : string;
  plan_recorded : string option;  (** the text the journal recorded *)
  plan_matches : bool;  (** byte-for-byte equality *)
}

(** Does this journal carry a transfer plan (making it plan-replayable)? *)
val has_plan : Feam_flightrec.Journal.t -> bool

(** Rebuild a journaled transfer plan by re-running the pure
    {!Feam_depot.Planner.compute} over the recorded wants, and compare
    the rendering with the recorded text. *)
val plan_of_journal : Feam_flightrec.Journal.t -> (plan_outcome, string) result
