(** Binary Description Component (paper §V.A).

    Gathers information about an application binary and its dependencies
    through the emulated system utilities, with the real implementation's
    fallback chain: objdump is primary; file(1), ldd and locate/find
    searches cover sites with missing tools.  At a guaranteed execution
    environment it additionally collects a copy and description of every
    shared library in the binary's dependency closure (except the C
    library). *)

type library_copy = {
  copy_request : string;  (** the DT_NEEDED name this copy satisfies *)
  copy_origin_path : string;  (** where it was found at the guaranteed site *)
  copy_bytes : string;  (** the library image itself *)
  copy_declared_size : int;  (** on-disk size, for bundle accounting *)
  copy_description : Description.t;
}

type source_output = {
  binary_description : Description.t;
  copies : library_copy list;
  unlocatable : string list;
      (** dependencies that could not be found for copying *)
}

(** Is this DT_NEEDED name the C library (or the dynamic loader), which
    is never copied (paper §V.A)? *)
val is_c_library : string -> bool

(** Locate one dependency by name: locate(1), then find(1) over the
    common library locations and LD_LIBRARY_PATH (paper §V.A). *)
val locate_library :
  ?clock:Feam_util.Sim_clock.t ->
  Feam_sysmodel.Site.t ->
  Feam_sysmodel.Env.t ->
  string ->
  string option

(** Enable the describe memo: within a run, cache successful objdump
    descriptions keyed by (site name, content hash of the image), so the
    same library image described at the same site many times is parsed
    once.  Hit/miss counts surface as [bdc.describe_cache.hit] /
    [.miss].  Opt-in; fallback-path (file/ldd) results are never
    cached. *)
val set_describe_memo : unit -> unit

(** Drop the memo and disable caching. *)
val clear_describe_memo : unit -> unit

(** Describe a binary, with fallbacks for missing tools. *)
val describe :
  ?clock:Feam_util.Sim_clock.t ->
  Feam_sysmodel.Site.t ->
  Feam_sysmodel.Env.t ->
  path:string ->
  (Description.t, string) result

(** The source phase's BDC run: describe the binary, then copy and
    describe its dependency closure. *)
val gather_source :
  ?clock:Feam_util.Sim_clock.t ->
  Feam_sysmodel.Site.t ->
  Feam_sysmodel.Env.t ->
  path:string ->
  (source_output, string) result
