(* FEAM's two phases (paper §V, Figure 2).

   The *source phase* (optional) runs at a guaranteed execution
   environment: BDC on the binary, EDC on the environment, hello-world
   probe generation, and bundling of shared-library copies.  The *target
   phase* (required) runs at each target site: EDC on the target, then
   the TEC produces the prediction and configuration. *)

open Feam_sysmodel

let src = Logs.Src.create "feam.phases" ~doc:"FEAM source/target phases"

module Log = (val Logs.src_log src : Logs.LOG)

let staging_binary_dir = "/tmp/feam/binary"

(* -- Source phase --------------------------------------------------------- *)

let source_phase ?clock _config site env ~binary_path =
  Feam_obs.Ledger.with_stage "phases.source" @@ fun () ->
  Feam_obs.Trace.with_span "phases.source"
    ~attrs:
      [
        ("site", Feam_obs.Span.Str (Site.name site));
        ("binary", Feam_obs.Span.Str binary_path);
      ]
  @@ fun () ->
  let sim_before =
    match clock with Some c -> Feam_util.Sim_clock.elapsed c | None -> 0.0
  in
  let finish result =
    (match clock with
    | Some c ->
      Feam_obs.Trace.set_attr "sim_s"
        (Feam_obs.Span.Float (Feam_util.Sim_clock.elapsed c -. sim_before))
    | None -> ());
    let outcome = match result with Ok _ -> "ok" | Error _ -> "error" in
    Feam_obs.Metrics.incr "phases.source" ~labels:[ ("result", outcome) ];
    Feam_flightrec.Recorder.record "phase"
      ~fields:
        [
          ("phase", Feam_util.Json.Str "source");
          ("site", Feam_util.Json.Str (Site.name site));
          ("result", Feam_util.Json.Str outcome);
        ];
    result
  in
  Log.info (fun m ->
      m "source phase at %s for %s" (Site.name site) binary_path);
  finish
  @@
  match Bdc.gather_source ?clock site env ~path:binary_path with
  | Error e -> Error ("source phase: " ^ e)
  | Ok gathered ->
    let discovery = Edc.discover ?clock ~env_type:`Guaranteed site env in
    (* Confirm the currently selected stack matches the BDC's finding
       (paper §V.B) — a mismatch means this environment cannot vouch for
       the binary. *)
    let current_matches =
      match
        ( gathered.Bdc.binary_description.Description.mpi,
          discovery.Discovery.current_stack )
      with
      | None, _ -> true (* serial binary: no stack to confirm *)
      | Some ident, Some current ->
        Feam_mpi.Impl.equal ident.Mpi_ident.impl current.Discovery.impl
      | Some _, None -> false
    in
    if not current_matches then
      Error
        "source phase: the loaded MPI stack does not match the stack the \
         binary was built with; not a guaranteed execution environment for it"
    else begin
      (* Generate hello-world probes with the binary's stack for later
         foreign testing at targets. *)
      let probes =
        match discovery.Discovery.current_stack with
        | None -> []
        | Some current -> (
          match Site.find_stack_install site ~slug:current.Discovery.slug with
          | None -> []
          | Some install ->
            (* A C hello world always; additionally a Fortran one when
               the application is a Fortran code, so the probe exercises
               the same runtime libraries the application needs. *)
            let uses_fortran =
              match gathered.Bdc.binary_description.Description.mpi with
              | Some ident -> ident.Mpi_ident.fortran_bindings
              | None -> false
            in
            let wanted =
              Feam_toolchain.Compile.hello_world_mpi
              ::
              (if uses_fortran then
                 [ Feam_toolchain.Compile.hello_world_mpi_fortran ]
               else [])
            in
            List.filter_map
              (fun program ->
                match
                  Feam_toolchain.Compile.compile_mpi ?clock site install program
                with
                | Error _ -> None
                | Ok bytes ->
                  Some
                    {
                      Bundle.probe_name =
                        program.Feam_toolchain.Compile.prog_name;
                      probe_bytes = bytes;
                      probe_stack_slug = current.Discovery.slug;
                      probe_declared_size =
                        Feam_toolchain.Compile.declared_size program;
                    })
              wanted)
      in
      let binary_bytes, binary_declared_size =
        match Vfs.find (Site.vfs site) binary_path with
        | Some { Vfs.kind = Vfs.Elf bytes; declared_size } ->
          (Some bytes, declared_size)
        | _ -> (None, 0)
      in
      Cost.charge clock Cost.bundle_pack_base;
      Log.info (fun m ->
          m "bundle ready: %d copies, %d unlocatable, %d probes"
            (List.length gathered.Bdc.copies)
            (List.length gathered.Bdc.unlocatable)
            (List.length probes));
      Ok
        {
          Bundle.created_at = Site.name site;
          binary_description = gathered.Bdc.binary_description;
          binary_bytes;
          binary_declared_size;
          copies = gathered.Bdc.copies;
          unlocatable = gathered.Bdc.unlocatable;
          probes;
          source_discovery = discovery;
        }
    end

(* -- Target phase ---------------------------------------------------------- *)

(* Run the required target phase.  Either a bundle (extended mode) or the
   binary's path at the target (basic mode) must be supplied; with a
   bundle carrying the binary bytes, the binary is materialized at the
   target automatically. *)
let target_phase ?clock ?depot config site env ?bundle ?binary_path () =
  Feam_obs.Ledger.with_stage "phases.target" @@ fun () ->
  Feam_obs.Trace.with_span "phases.target"
    ~attrs:
      [
        ("site", Feam_obs.Span.Str (Site.name site));
        ("extended", Feam_obs.Span.Bool (bundle <> None));
      ]
  @@ fun () ->
  let sim_before =
    match clock with Some c -> Feam_util.Sim_clock.elapsed c | None -> 0.0
  in
  let finish result =
    (match clock with
    | Some c ->
      Feam_obs.Trace.set_attr "sim_s"
        (Feam_obs.Span.Float (Feam_util.Sim_clock.elapsed c -. sim_before))
    | None -> ());
    let outcome = match result with Ok _ -> "ok" | Error _ -> "error" in
    Feam_obs.Metrics.incr "phases.target" ~labels:[ ("result", outcome) ];
    Feam_flightrec.Recorder.record "phase"
      ~fields:
        [
          ("phase", Feam_util.Json.Str "target");
          ("site", Feam_util.Json.Str (Site.name site));
          ("result", Feam_util.Json.Str outcome);
        ];
    result
  in
  finish
  @@
  let vfs = Site.vfs site in
  (* Make the binary available at the target if the bundle carries it. *)
  let binary_path =
    match (binary_path, bundle) with
    | Some p, _ -> Some p
    | None, Some b -> (
      match b.Bundle.binary_bytes with
      | Some bytes ->
        let path =
          staging_binary_dir ^ "/"
          ^ Vfs.basename b.Bundle.binary_description.Description.path
        in
        Vfs.add ~declared_size:b.Bundle.binary_declared_size vfs path
          (Vfs.Elf bytes);
        Cost.charge clock
          (Cost.copy_per_mb
          *. (float_of_int b.Bundle.binary_declared_size /. 1048576.0));
        Some path
      | None -> None)
    | None, None -> None
  in
  (* Binary description: from the bundle when available (the BDC already
     ran at the guaranteed site), otherwise by running the BDC here. *)
  let description =
    match bundle with
    | Some b -> Ok b.Bundle.binary_description
    | None -> (
      match binary_path with
      | None ->
        Error
          "target phase: need either a source-phase bundle or the binary at \
           the target site"
      | Some path -> Bdc.describe ?clock site env ~path)
  in
  match description with
  | Error e -> Error ("target phase: " ^ e)
  | Ok description ->
    Log.info (fun m ->
        m "target phase at %s for %s" (Site.name site)
          description.Description.path);
    Feam_flightrec.Recorder.record "run"
      ~fields:
        [
          ("site", Feam_util.Json.Str (Site.name site));
          ("binary", Feam_util.Json.Str description.Description.path);
          ("extended", Feam_util.Json.Bool (bundle <> None));
        ];
    let discovery = Edc.discover ?clock ~env_type:`Target site env in
    let input =
      { Tec.config; description; binary_path; bundle; discovery }
    in
    let prediction = Tec.evaluate ?clock ?depot site env input in
    let report =
      Report.make ~site_name:(Site.name site)
        ~binary:description.Description.path prediction
    in
    Report.journal report;
    Ok report
