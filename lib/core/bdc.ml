(* Binary Description Component (paper §V.A).

   Gathers information about an application binary and its dependencies
   using the emulated system utilities, with the same fallback chain as
   the real implementation: objdump is primary; file(1), ldd and the
   locate/find searches cover sites where tools are missing.  At a
   guaranteed execution environment it additionally collects a copy and a
   description of every shared library the binary links against (except
   the C library), recursively over the dependency closure. *)

open Feam_util
open Feam_sysmodel

type library_copy = {
  copy_request : string;      (* the DT_NEEDED name this copy satisfies *)
  copy_origin_path : string;  (* where it was found at the guaranteed site *)
  copy_bytes : string;        (* the library image itself *)
  copy_declared_size : int;   (* on-disk size, for bundle accounting *)
  copy_description : Description.t;
}

type source_output = {
  binary_description : Description.t;
  copies : library_copy list;
  unlocatable : string list; (* dependencies we failed to find for copying *)
}

let comment_provenance ?clock site path =
  match Utilities.readelf_comment ?clock site path with
  | Ok text ->
    Objdump_parse.provenance_of_comments (Objdump_parse.parse_readelf_comment text)
  | Error _ -> { Objdump_parse.compiler_banner = None; build_os = None }

(* Primary path: objdump -p. *)
let describe_via_objdump ?clock site path =
  Feam_obs.Trace.with_span "bdc.objdump_describe" @@ fun () ->
  match Utilities.objdump_p ?clock site path with
  | Error e -> Error (Utilities.error_to_string e)
  | Ok text -> (
    let parse_start = Feam_obs.Trace.now_ns () in
    let parsed = Objdump_parse.parse_objdump_p text in
    Feam_obs.Metrics.observe "bdc.objdump_parse_ns"
      (Int64.to_float (Int64.sub (Feam_obs.Trace.now_ns ()) parse_start));
    match parsed with
    | Error e ->
      Feam_obs.Metrics.incr "bdc.objdump_parse_failures";
      Error e
    | Ok info ->
      let provenance = comment_provenance ?clock site path in
      Description.of_dynamic_info ~path ~provenance info)

(* Fallback: file(1) for format/ISA, ldd -v for dependencies and version
   requirements (paper §V.A notes ldd "cannot be relied on to always
   provide this information" — it fails for foreign-architecture
   binaries, and then we must give up on those fields). *)
let describe_via_file_and_ldd ?clock site env path =
  match Utilities.file_cmd ?clock site path with
  | Error e -> Error (Utilities.error_to_string e)
  | Ok file_text ->
    if not (Str_split.contains ~sub:"ELF" file_text) then
      Error (path ^ ": not an ELF binary")
    else begin
      let machine_class =
        [
          ("Advanced Micro Devices X86-64", (Feam_elf.Types.X86_64, Feam_elf.Types.C64, "elf64-x86-64"));
          ("Intel 80386", (Feam_elf.Types.I386, Feam_elf.Types.C32, "elf32-i386"));
          ("PowerPC64", (Feam_elf.Types.PPC64, Feam_elf.Types.C64, "elf64-powerpc"));
          ("PowerPC", (Feam_elf.Types.PPC, Feam_elf.Types.C32, "elf32-powerpc"));
          ("Sparc v9", (Feam_elf.Types.SPARCV9, Feam_elf.Types.C64, "elf64-sparc"));
          ("Sparc", (Feam_elf.Types.SPARC, Feam_elf.Types.C32, "elf32-sparc"));
          ("Intel IA-64", (Feam_elf.Types.IA64, Feam_elf.Types.C64, "elf64-ia64-little"));
        ]
        |> List.find_opt (fun (tag, _) -> Str_split.contains ~sub:tag file_text)
      in
      match machine_class with
      | None -> Error (path ^ ": unrecognized ELF machine in file(1) output")
      | Some (_, (machine, elf_class, file_format)) ->
        let needed, verneeds =
          match Feam_dynlinker.Ldd.run ?clock site env path with
          | Ok resolution ->
            let root = resolution.Feam_dynlinker.Resolve.root_spec in
            ( root.Feam_elf.Spec.needed,
              List.map
                (fun vn ->
                  (vn.Feam_elf.Spec.vn_file, vn.Feam_elf.Spec.vn_versions))
                root.Feam_elf.Spec.verneeds )
          | Error _ -> ([], [])
        in
        let provenance = comment_provenance ?clock site path in
        Ok
          {
            Description.path;
            file_format;
            machine;
            elf_class;
            soname = None; (* not recoverable without objdump *)
            needed;
            rpath = None;
            runpath = None;
            verneeds;
            required_glibc = Description.required_glibc_of_verneeds verneeds;
            mpi = Mpi_ident.identify needed;
            provenance;
          }
    end

(* -- describe memo (evalharness opt-in) --------------------------------- *)

(* Within an evaluation run the same library image is described at many
   sites.  A description is a function of the image bytes and the site's
   tooling alone (every fault draw is keyed and seeded), so identical
   bytes at the same site always describe identically up to the path
   field.  The cache is opt-in — evalharness enables it for a run — and
   keyed by (site name, content hash); only objdump-path successes are
   cached, so tool-fallback behaviour is untouched. *)
let describe_memo : (string * string, Description.t) Hashtbl.t option ref =
  ref None

let set_describe_memo () = describe_memo := Some (Hashtbl.create 256)
let clear_describe_memo () = describe_memo := None

(* Returns the memo key plus the image size, so a hit can credit the
   bytes the cache avoided re-reading to the cache telemetry. *)
let memo_key_of site path =
  match !describe_memo with
  | None -> None
  | Some _ -> (
    match Vfs.find (Site.vfs site) path with
    | Some { Vfs.kind = Vfs.Elf bytes; _ } ->
      Some
        ( ( Site.name site,
            Feam_depot.Chash.to_hex (Feam_depot.Chash.of_bytes bytes) ),
          String.length bytes )
    | _ -> None)

(* [describe ?clock site env ~path] — full description with fallbacks. *)
let describe ?clock site env ~path =
  Feam_obs.Ledger.with_stage "bdc.describe" @@ fun () ->
  Feam_obs.Prof.with_timer "bdc.describe" @@ fun () ->
  Feam_obs.Trace.with_span "bdc.describe"
    ~attrs:[ ("path", Feam_obs.Span.Str path) ]
  @@ fun () ->
  let journal_describe method_ (d : Description.t) =
    Feam_flightrec.Recorder.evidence ~stage:"bdc" ~kind:"describe"
      [
        ("path", Json.Str path);
        ("method", Json.Str method_);
        ("format", Json.Str d.Description.file_format);
        ( "needed",
          Json.List (List.map (fun n -> Json.Str n) d.Description.needed) );
        ( "required_glibc",
          match d.Description.required_glibc with
          | Some v -> Json.Str (Version.to_string v)
          | None -> Json.Null );
      ]
  in
  let memo_key = memo_key_of site path in
  let cached =
    match (memo_key, !describe_memo) with
    | Some (key, _), Some tbl -> Hashtbl.find_opt tbl key
    | _ -> None
  in
  match cached with
  | Some d ->
    Feam_obs.Metrics.incr "bdc.describe_cache.hit";
    (match memo_key with
    | Some (_, size) ->
      Feam_obs.Metrics.incr ~by:size "bdc.describe_cache.saved_bytes"
    | None -> ());
    let d = { d with Description.path } in
    journal_describe "cache" d;
    Ok d
  | None -> (
    if memo_key <> None then Feam_obs.Metrics.incr "bdc.describe_cache.miss";
    match describe_via_objdump ?clock site path with
    | Ok d ->
      Feam_obs.Metrics.incr "bdc.describe" ~labels:[ ("method", "objdump") ];
      journal_describe "objdump" d;
      (match (memo_key, !describe_memo) with
      | Some (key, _), Some tbl -> Hashtbl.replace tbl key d
      | _ -> ());
      Ok d
    | Error _ ->
      Feam_obs.Metrics.incr "bdc.describe" ~labels:[ ("method", "file_ldd") ];
      Feam_obs.Trace.with_span "bdc.file_ldd_describe" @@ fun () ->
      let r = describe_via_file_and_ldd ?clock site env path in
      Result.iter (journal_describe "file_ldd") r;
      r)

(* -- Library location (paper §V.A, three search methods) --------------- *)

let is_c_library name =
  match Soname.of_string name with
  | Some s -> Soname.base s = "libc" || Soname.base s = "ld-linux"
  | None -> false

(* Locate one dependency by name using locate(1), then find(1) over the
   common library locations and LD_LIBRARY_PATH. *)
let locate_library ?clock site env name =
  Feam_obs.Trace.with_span "bdc.locate_library"
    ~attrs:[ ("library", Feam_obs.Span.Str name) ]
  @@ fun () ->
  let pick paths =
    (* Prefer an exact basename match; ignore .so dev symlinks. *)
    paths
    |> List.filter (fun p -> Vfs.basename p = name)
    |> fun l -> List.nth_opt l 0
  in
  let via_locate () =
    match Utilities.locate ?clock site name with
    | Ok paths -> pick paths
    | Error _ -> None
  in
  let via_find () =
    let dirs =
      Site.default_lib_dirs site @ Env.ld_library_path env
      @ Site.ld_conf_dirs site
    in
    match Utilities.find_in_dirs ?clock site dirs name with
    | Ok paths -> pick paths
    | Error _ -> None
  in
  let journal_locate method_ found =
    Feam_flightrec.Recorder.evidence ~stage:"bdc" ~kind:"locate"
      [
        ("library", Json.Str name);
        ("method", Json.Str method_);
        ("path", match found with Some p -> Json.Str p | None -> Json.Null);
      ]
  in
  match via_locate () with
  | Some p ->
    Feam_obs.Trace.set_attr "method" (Feam_obs.Span.Str "locate");
    journal_locate "locate" (Some p);
    Some p
  | None -> (
    match via_find () with
    | Some p ->
      Feam_obs.Trace.set_attr "method" (Feam_obs.Span.Str "find");
      journal_locate "find" (Some p);
      Some p
    | None ->
      Feam_obs.Metrics.incr "bdc.locate_failures";
      journal_locate "none" None;
      None)

(* Paths of the binary's shared libraries at a guaranteed site: ldd when
   it works, per-name searches otherwise. *)
let dependency_paths ?clock site env ~path ~needed =
  Feam_obs.Trace.with_span "bdc.dependency_paths" @@ fun () ->
  match Feam_dynlinker.Ldd.run ?clock site env path with
  | Ok resolution ->
    let from_ldd =
      resolution.Feam_dynlinker.Resolve.resolved
      |> List.map (fun r ->
             (r.Feam_dynlinker.Resolve.lib_name, Some r.Feam_dynlinker.Resolve.lib_path))
    in
    let missing =
      resolution.Feam_dynlinker.Resolve.missing |> List.map (fun m -> (m, None))
    in
    from_ldd @ missing
  | Error _ ->
    (* ldd unusable: search for each direct dependency by name, then
       recurse through discovered libraries' own dependencies. *)
    let seen = Hashtbl.create 16 in
    let acc = ref [] in
    let rec visit name =
      if not (Hashtbl.mem seen name) then begin
        Hashtbl.add seen name ();
        let found = locate_library ?clock site env name in
        acc := (name, found) :: !acc;
        match found with
        | None -> ()
        | Some p -> (
          match describe_via_objdump ?clock site p with
          | Ok d -> List.iter visit d.Description.needed
          | Error _ -> ())
      end
    in
    List.iter visit needed;
    List.rev !acc

(* [gather_source ?clock site env ~path] — the source phase's BDC run:
   describe the binary, then copy and describe every shared library in
   its dependency closure except the C library. *)
let gather_source ?clock site env ~path =
  Feam_obs.Trace.with_span "bdc.gather_source"
    ~attrs:[ ("path", Feam_obs.Span.Str path) ]
  @@ fun () ->
  match describe ?clock site env ~path with
  | Error e -> Error e
  | Ok binary_description ->
    let deps =
      dependency_paths ?clock site env ~path
        ~needed:binary_description.Description.needed
    in
    let copies = ref [] in
    let unlocatable = ref [] in
    List.iter
      (fun (name, found) ->
        if not (is_c_library name) then
          match found with
          | None -> unlocatable := name :: !unlocatable
          | Some origin -> (
            match Vfs.find (Site.vfs site) origin with
            | Some { Vfs.kind = Vfs.Elf bytes; declared_size } -> (
              Cost.charge clock
                (Cost.copy_per_mb *. (float_of_int declared_size /. 1048576.0));
              match describe ?clock site env ~path:origin with
              | Ok copy_description ->
                Feam_obs.Trace.event "copy"
                  ~attrs:
                    [
                      ("library", Feam_obs.Span.Str name);
                      ("origin", Feam_obs.Span.Str origin);
                    ];
                Feam_flightrec.Recorder.evidence ~stage:"bdc" ~kind:"copy"
                  [
                    ("library", Json.Str name);
                    ("origin", Json.Str origin);
                    ("declared_size", Json.Int declared_size);
                  ];
                copies :=
                  {
                    copy_request = name;
                    copy_origin_path = origin;
                    copy_bytes = bytes;
                    copy_declared_size = declared_size;
                    copy_description;
                  }
                  :: !copies
              | Error _ -> unlocatable := name :: !unlocatable)
            | _ -> unlocatable := name :: !unlocatable))
      deps;
    Feam_obs.Metrics.incr ~by:(List.length !copies) "bdc.library_copies";
    Feam_obs.Metrics.incr ~by:(List.length !unlocatable) "bdc.unlocatable";
    Feam_obs.Trace.set_attr "copies" (Feam_obs.Span.Int (List.length !copies));
    Feam_obs.Trace.set_attr "unlocatable"
      (Feam_obs.Span.Int (List.length !unlocatable));
    Ok
      {
        binary_description;
        copies = List.rev !copies;
        unlocatable = List.rev !unlocatable;
      }
