(* Target Evaluation Component (paper §V.C): matches the BDC's binary
   description against the EDC's environment description, probes
   candidate MPI stacks, applies the resolution model, and produces the
   prediction with its execution plan.

   Evaluation order follows the paper: ISA and C-library determinants
   first (fail fast), then MPI stack probing, then shared libraries with
   resolution.

   The component is split into effectful evidence gathering (probing,
   ldd walks, staging) and a pure [decide] shared with `feam replay`:
   live evaluation records the outcome of every effect as evidence,
   journals it, and feeds it to [decide]; replay feeds [decide] the
   recorded evidence instead.  One code path producing the verdict is
   what makes a replayed report byte-for-byte identical. *)

open Feam_util
open Feam_sysmodel
module Recorder = Feam_flightrec.Recorder

let src = Logs.Src.create "feam.tec" ~doc:"FEAM target evaluation"

module Log = (val Logs.src_log src : Logs.LOG)

type input = {
  config : Config.t;
  description : Description.t;
  binary_path : string option; (* binary's location at the target, if present *)
  bundle : Bundle.t option;
  discovery : Discovery.t;
}

(* The outcome of every effect the MPI-stack determinant performs:
   which advertised stack passed probes, and why the others failed. *)
type stack_evidence = {
  se_functioning : string option;
  se_probe_failures : (string * string) list; (* slug, failure detail *)
}

(* The outcome of every effect the shared-library determinant performs:
   what the target is missing, what the resolution model staged from
   the bundle, and what stayed unresolved. *)
type libs_evidence = {
  le_missing : string list;
  le_staged : (string * string) list;     (* needed name -> staged path *)
  le_unresolved : (string * string) list; (* name, why resolution failed *)
}

(* Compiler family of the binary, from its .comment provenance: used to
   order candidate stacks so that matching runtimes are preferred. *)
let binary_compiler_family (d : Description.t) =
  match d.Description.provenance.Objdump_parse.compiler_banner with
  | None -> None
  | Some banner ->
    if String.starts_with ~prefix:"GCC:" banner then Some Feam_mpi.Compiler.Gnu
    else if String.starts_with ~prefix:"Intel" banner then
      Some Feam_mpi.Compiler.Intel
    else if String.starts_with ~prefix:"PGI" banner then Some Feam_mpi.Compiler.Pgi
    else None

let isa_determinant (d : Description.t) (disc : Discovery.t) =
  let compatible =
    match disc.Discovery.machine with
    | None -> false (* cannot vouch for an unknown architecture *)
    | Some site_machine ->
      Predict.isa_rule ~binary_machine:d.Description.machine ~site_machine
  in
  {
    Predict.isa_compatible = compatible;
    binary_machine = d.Description.machine;
    binary_class = d.Description.elf_class;
    site_machine = disc.Discovery.machine;
  }

let clib_determinant (d : Description.t) (disc : Discovery.t) =
  {
    Predict.clib_compatible =
      Predict.clib_rule ~required:d.Description.required_glibc
        ~available:disc.Discovery.glibc;
    required = d.Description.required_glibc;
    available = disc.Discovery.glibc;
  }

(* Candidate stacks: matching MPI implementation type only (§III.B),
   matching compiler family preferred. *)
let candidate_stacks (d : Description.t) (disc : Discovery.t) =
  match d.Description.mpi with
  | None -> []
  | Some ident ->
    let matching =
      disc.Discovery.stacks
      |> List.filter (fun s ->
             Feam_mpi.Impl.compatible ~binary:ident.Mpi_ident.impl
               ~site:s.Discovery.impl)
    in
    let family = binary_compiler_family d in
    let preferred, other =
      List.partition
        (fun s ->
          match (family, s.Discovery.compiler_family) with
          | Some f, Some sf -> Feam_mpi.Compiler.family_equal f sf
          | _ -> false)
        matching
    in
    preferred @ other

let requested_impl_of (d : Description.t) =
  Option.map (fun i -> i.Mpi_ident.impl) d.Description.mpi

(* -- the pure decision core ------------------------------------------------ *)

(* [decide] computes the prediction from the description, the discovery
   and the recorded outcomes of the effectful steps.  ISA and C-library
   determinants need no evidence (they are pure functions of their
   inputs); stack and library evidence is optional because evaluation
   may never have reached those determinants.  A journal that should
   carry evidence but does not (tampering, truncation) yields an
   explicit not-ready verdict rather than a crash. *)
let decide ~config ~(description : Description.t) ~(discovery : Discovery.t)
    ?stack ?libs () : Predict.t =
  let d = description and disc = discovery in
  let isa = isa_determinant d disc in
  let clib = clib_determinant d disc in
  if not (isa.Predict.isa_compatible && clib.Predict.clib_compatible) then
    (* Paper §V.C: only when ISA and C library are compatible do we
       proceed to the MPI stack and shared-library determinants. *)
    let reasons =
      (if isa.Predict.isa_compatible then []
       else
         [
           Printf.sprintf "incompatible ISA: binary is %s (%s)"
             (Feam_elf.Types.machine_uname isa.Predict.binary_machine)
             (match isa.Predict.site_machine with
             | Some m -> "site is " ^ Feam_elf.Types.machine_uname m
             | None -> "site architecture unknown");
         ])
      @
      if clib.Predict.clib_compatible then []
      else
        [
          Printf.sprintf "C library too old: binary requires %s, site has %s"
            (match clib.Predict.required with
            | Some v -> Version.to_string v
            | None -> "?")
            (match clib.Predict.available with
            | Some v -> Version.to_string v
            | None -> "unknown");
        ]
    in
    {
      Predict.verdict = Predict.Not_ready reasons;
      determinants = { Predict.isa; stack = None; clib; libs = None };
    }
  else
    let candidates = candidate_stacks d disc in
    let requested_impl = requested_impl_of d in
    match (requested_impl, stack) with
    | Some _, None ->
      {
        Predict.verdict =
          Predict.Not_ready
            [ "incomplete evidence: no MPI stack probe outcome recorded" ];
        determinants = { Predict.isa; stack = None; clib; libs = None };
      }
    | _ ->
      let se =
        Option.value stack
          ~default:{ se_functioning = None; se_probe_failures = [] }
      in
      let stack_check =
        {
          Predict.stack_compatible =
            (requested_impl = None || se.se_functioning <> None);
          requested_impl;
          candidates_found = List.map (fun c -> c.Discovery.slug) candidates;
          functioning = se.se_functioning;
          probe_failures = se.se_probe_failures;
        }
      in
      if not stack_check.Predict.stack_compatible then
        let reason =
          if candidates = [] then
            "no compatible MPI implementation available at the target site"
          else
            Printf.sprintf
              "no functioning compatible MPI stack (%d candidate(s) failed probes)"
              (List.length candidates)
        in
        {
          Predict.verdict = Predict.Not_ready [ reason ];
          determinants =
            { Predict.isa; stack = Some stack_check; clib; libs = None };
        }
      else (
        match libs with
        | None ->
          {
            Predict.verdict =
              Predict.Not_ready
                [
                  "incomplete evidence: no shared-library resolution outcome \
                   recorded";
                ];
            determinants =
              { Predict.isa; stack = Some stack_check; clib; libs = None };
          }
        | Some le ->
          let libs_check =
            {
              Predict.libs_compatible = le.le_unresolved = [];
              missing = le.le_missing;
              resolved_by_copies = List.map fst le.le_staged;
              unresolved = le.le_unresolved;
            }
          in
          let determinants =
            {
              Predict.isa;
              stack = Some stack_check;
              clib;
              libs = Some libs_check;
            }
          in
          if libs_check.Predict.libs_compatible then
            let launcher =
              match requested_impl with
              | Some impl -> Config.launcher config impl
              | None -> ""
            in
            let plan =
              {
                Predict.chosen_stack_slug = stack_check.Predict.functioning;
                module_loads = Option.to_list stack_check.Predict.functioning;
                ld_library_path_additions =
                  (if libs_check.Predict.resolved_by_copies = [] then []
                   else [ config.Config.staging_dir ]);
                staged_copies = le.le_staged;
                launcher;
              }
            in
            { Predict.verdict = Predict.Ready plan; determinants }
          else
            let reasons =
              libs_check.Predict.unresolved
              |> List.map (fun (name, why) ->
                     Printf.sprintf "missing shared library %s (%s)" name why)
            in
            { Predict.verdict = Predict.Not_ready reasons; determinants })

(* -- effectful evidence gathering ------------------------------------------ *)

(* Probe candidates in preference order; first functioning one wins. *)
let select_stack ?clock input site env candidates =
  let rec try_candidates failures = function
    | [] -> (None, List.rev failures)
    | candidate :: rest -> (
      match Site.find_stack_install site ~slug:candidate.Discovery.slug with
      | None ->
        try_candidates
          ((candidate.Discovery.slug, "advertised but not found on disk") :: failures)
          rest
      | Some install -> (
        match
          Probe.test_stack ?clock input.config site env install
            ~bundle:input.bundle
            ~target_glibc:input.discovery.Discovery.glibc
        with
        | Ok () ->
          Log.debug (fun m -> m "stack %s passed probes" candidate.Discovery.slug);
          (Some (candidate, install), List.rev failures)
        | Error why ->
          Log.debug (fun m ->
              m "stack %s failed probes: %s" candidate.Discovery.slug why);
          try_candidates ((candidate.Discovery.slug, why) :: failures) rest))
  in
  try_candidates [] candidates

(* Missing shared libraries under [env]: ldd on the binary when present,
   name-by-name search otherwise (the bundle-only case). *)
let missing_libraries ?clock input site env =
  match input.binary_path with
  | Some path ->
    Edc.missing_libraries ?clock site env ~binary_path:path
      ~needed:input.description.Description.needed
  | None ->
    input.description.Description.needed
    |> List.filter (fun name ->
           not (Resolve_model.present_at_target site env name))

(* -- journaling ------------------------------------------------------------ *)

(* The decision records below journal under these determinant names;
   the evidence store's dependency map answers in the same vocabulary. *)
let determinant_names = Evidence.all_determinants

let pass_fail b = if b then "pass" else "fail"

let opt_str = function None -> Json.Null | Some s -> Json.Str s

let journal_isa (isa : Predict.isa_check) =
  Recorder.decision ~determinant:"isa"
    ~verdict:(pass_fail isa.Predict.isa_compatible)
    [
      ( "binary_machine",
        Json.Str (Feam_elf.Types.machine_uname isa.Predict.binary_machine) );
      ( "binary_class",
        Json.Str (Fmt.str "%a" Feam_elf.Types.pp_class isa.Predict.binary_class)
      );
      ( "site_machine",
        opt_str
          (Option.map Feam_elf.Types.machine_uname isa.Predict.site_machine) );
    ]

let journal_clib (clib : Predict.clib_check) =
  Recorder.decision ~determinant:"glibc"
    ~verdict:(pass_fail clib.Predict.clib_compatible)
    [
      ("required", opt_str (Option.map Version.to_string clib.Predict.required));
      ( "available",
        opt_str (Option.map Version.to_string clib.Predict.available) );
    ]

let journal_stack ~requested_impl ~candidates se ~compatible =
  Recorder.decision ~determinant:"mpi_stack" ~verdict:(pass_fail compatible)
    [
      ("requested_impl", opt_str (Option.map Feam_mpi.Impl.slug requested_impl));
      ( "candidates",
        Json.List
          (List.map (fun c -> Json.Str c.Discovery.slug) candidates) );
      ("functioning", opt_str se.se_functioning);
      ( "probe_failures",
        Json.List
          (List.map
             (fun (slug, why) ->
               Json.Obj [ ("stack", Json.Str slug); ("reason", Json.Str why) ])
             se.se_probe_failures) );
    ]

let journal_libs le ~compatible =
  Recorder.decision ~determinant:"shared_libraries"
    ~verdict:(pass_fail compatible)
    [
      ("missing", Json.List (List.map (fun m -> Json.Str m) le.le_missing));
      ( "staged",
        Json.List
          (List.map
             (fun (name, path) ->
               Json.Obj [ ("library", Json.Str name); ("path", Json.Str path) ])
             le.le_staged) );
      ( "unresolved",
        Json.List
          (List.map
             (fun (name, why) ->
               Json.Obj [ ("library", Json.Str name); ("reason", Json.Str why) ])
             le.le_unresolved) );
    ]

(* -- live evaluation ------------------------------------------------------- *)

let evaluate_inner ?clock ?depot site env (input : input) : Predict.t =
  let d = input.description in
  let disc = input.discovery in
  let decide_now ?stack ?libs () =
    decide ~config:input.config ~description:d ~discovery:disc ?stack ?libs ()
  in
  (* [determinant] names follow the journal's decision records, so the
     cost ledger and the flight recorder agree on vocabulary. *)
  let check name determinant compatible f =
    Feam_obs.Ledger.with_determinant determinant @@ fun () ->
    Feam_obs.Trace.with_span name @@ fun () ->
    let r = f () in
    Feam_obs.Trace.set_attr "compatible" (Feam_obs.Span.Bool (compatible r));
    r
  in
  let isa =
    check "predict.check.isa" "isa"
      (fun c -> c.Predict.isa_compatible)
      (fun () ->
        let isa = isa_determinant d disc in
        journal_isa isa;
        isa)
  in
  let clib =
    check "predict.check.clib" "glibc"
      (fun c -> c.Predict.clib_compatible)
      (fun () ->
        let clib = clib_determinant d disc in
        journal_clib clib;
        clib)
  in
  if not (isa.Predict.isa_compatible && clib.Predict.clib_compatible) then
    decide_now ()
  else
    (* MPI stack determinant. *)
    let selection, stack_ev =
      Feam_obs.Ledger.with_determinant "mpi_stack" @@ fun () ->
      Feam_obs.Trace.with_span "predict.check.stack" @@ fun () ->
      let candidates = candidate_stacks d disc in
      let requested_impl = requested_impl_of d in
      let selection, probe_failures =
        if requested_impl = None then (None, [])
        else select_stack ?clock input site env candidates
      in
      let stack_ev =
        {
          se_functioning = Option.map (fun (c, _) -> c.Discovery.slug) selection;
          se_probe_failures = probe_failures;
        }
      in
      let compatible = requested_impl = None || selection <> None in
      journal_stack ~requested_impl ~candidates stack_ev ~compatible;
      Feam_obs.Trace.set_attr "compatible" (Feam_obs.Span.Bool compatible);
      Feam_obs.Trace.set_attr "candidates"
        (Feam_obs.Span.Int (List.length candidates));
      (selection, stack_ev)
    in
    if not (requested_impl_of d = None || stack_ev.se_functioning <> None) then
      decide_now ~stack:stack_ev ()
    else
      (* Shared-library determinant, under the chosen stack's session. *)
      let libs_ev =
        Feam_obs.Ledger.with_determinant "shared_libraries" @@ fun () ->
        Feam_obs.Trace.with_span "predict.check.libs" @@ fun () ->
        let session_env =
          match selection with
          | Some (_, install) -> Modules_tool.load_stack env install
          | None -> env
        in
        let missing = missing_libraries ?clock input site session_env in
        if missing <> [] then
          Log.info (fun m ->
              m "missing shared libraries: %s" (String.concat ", " missing));
        let resolution =
          match (missing, input.bundle) with
          | [], _ -> None
          | _ :: _, Some bundle ->
            Some
              (Resolve_model.resolve ?clock ?depot input.config site session_env
                 ~bundle
                 ~target_glibc:disc.Discovery.glibc
                 ~binary_machine:d.Description.machine
                 ~binary_class:d.Description.elf_class ~missing)
          | _ :: _, None -> None
        in
        let staged, unresolved =
          match resolution with
          | None ->
            ( [],
              List.map (fun m -> (m, "no source-phase bundle available")) missing
            )
          | Some r ->
            ( r.Resolve_model.staged,
              List.map
                (fun (name, rej) -> (name, Resolve_model.rejection_to_string rej))
                r.Resolve_model.failed )
        in
        let libs_ev =
          { le_missing = missing; le_staged = staged; le_unresolved = unresolved }
        in
        journal_libs libs_ev ~compatible:(unresolved = []);
        Feam_obs.Trace.set_attr "compatible"
          (Feam_obs.Span.Bool (unresolved = []));
        Feam_obs.Trace.set_attr "missing"
          (Feam_obs.Span.Int (List.length missing));
        libs_ev
      in
      decide_now ~stack:stack_ev ~libs:libs_ev ()

let evaluate ?clock ?depot site env (input : input) : Predict.t =
  Feam_obs.Ledger.with_stage "tec.evaluate" @@ fun () ->
  Feam_obs.Trace.with_span "tec.evaluate"
    ~attrs:
      [ ("binary", Feam_obs.Span.Str input.description.Description.path) ]
  @@ fun () ->
  Recorder.payload ~kind:"config"
    (Json.Str (Config.to_file_body input.config));
  Recorder.payload ~kind:"description" (Description.to_json input.description);
  Recorder.payload ~kind:"discovery" (Discovery.to_json input.discovery);
  let t = evaluate_inner ?clock ?depot site env input in
  let outcome = if Predict.is_ready t then "ready" else "not_ready" in
  Recorder.decision ~determinant:"predict"
    ~verdict:(if Predict.is_ready t then "ready" else "not ready")
    [
      ( "reasons",
        Json.List (List.map (fun r -> Json.Str r) (Predict.reasons t)) );
    ];
  Feam_obs.Metrics.incr "predict.outcome" ~labels:[ ("result", outcome) ];
  Feam_obs.Trace.set_attr "verdict" (Feam_obs.Span.Str outcome);
  t
