(* Target Evaluation Component (paper §V.C): matches the BDC's binary
   description against the EDC's environment description, probes
   candidate MPI stacks, applies the resolution model, and produces the
   prediction with its execution plan.

   Evaluation order follows the paper: ISA and C-library determinants
   first (fail fast), then MPI stack probing, then shared libraries with
   resolution. *)

open Feam_util
open Feam_sysmodel

let src = Logs.Src.create "feam.tec" ~doc:"FEAM target evaluation"

module Log = (val Logs.src_log src : Logs.LOG)

type input = {
  config : Config.t;
  description : Description.t;
  binary_path : string option; (* binary's location at the target, if present *)
  bundle : Bundle.t option;
  discovery : Discovery.t;
}

(* Compiler family of the binary, from its .comment provenance: used to
   order candidate stacks so that matching runtimes are preferred. *)
let binary_compiler_family (d : Description.t) =
  match d.Description.provenance.Objdump_parse.compiler_banner with
  | None -> None
  | Some banner ->
    if String.starts_with ~prefix:"GCC:" banner then Some Feam_mpi.Compiler.Gnu
    else if String.starts_with ~prefix:"Intel" banner then
      Some Feam_mpi.Compiler.Intel
    else if String.starts_with ~prefix:"PGI" banner then Some Feam_mpi.Compiler.Pgi
    else None

let isa_determinant (d : Description.t) (disc : Discovery.t) =
  let compatible =
    match disc.Discovery.machine with
    | None -> false (* cannot vouch for an unknown architecture *)
    | Some site_machine ->
      Predict.isa_rule ~binary_machine:d.Description.machine ~site_machine
  in
  {
    Predict.isa_compatible = compatible;
    binary_machine = d.Description.machine;
    binary_class = d.Description.elf_class;
    site_machine = disc.Discovery.machine;
  }

let clib_determinant (d : Description.t) (disc : Discovery.t) =
  {
    Predict.clib_compatible =
      Predict.clib_rule ~required:d.Description.required_glibc
        ~available:disc.Discovery.glibc;
    required = d.Description.required_glibc;
    available = disc.Discovery.glibc;
  }

(* Candidate stacks: matching MPI implementation type only (§III.B),
   matching compiler family preferred. *)
let candidate_stacks (d : Description.t) (disc : Discovery.t) =
  match d.Description.mpi with
  | None -> []
  | Some ident ->
    let matching =
      disc.Discovery.stacks
      |> List.filter (fun s ->
             Feam_mpi.Impl.compatible ~binary:ident.Mpi_ident.impl
               ~site:s.Discovery.impl)
    in
    let family = binary_compiler_family d in
    let preferred, other =
      List.partition
        (fun s ->
          match (family, s.Discovery.compiler_family) with
          | Some f, Some sf -> Feam_mpi.Compiler.family_equal f sf
          | _ -> false)
        matching
    in
    preferred @ other

(* Probe candidates in preference order; first functioning one wins. *)
let select_stack ?clock input site env candidates =
  let rec try_candidates failures = function
    | [] -> (None, List.rev failures)
    | candidate :: rest -> (
      match Site.find_stack_install site ~slug:candidate.Discovery.slug with
      | None ->
        try_candidates
          ((candidate.Discovery.slug, "advertised but not found on disk") :: failures)
          rest
      | Some install -> (
        match
          Probe.test_stack ?clock input.config site env install
            ~bundle:input.bundle
            ~target_glibc:input.discovery.Discovery.glibc
        with
        | Ok () ->
          Log.debug (fun m -> m "stack %s passed probes" candidate.Discovery.slug);
          (Some (candidate, install), List.rev failures)
        | Error why ->
          Log.debug (fun m ->
              m "stack %s failed probes: %s" candidate.Discovery.slug why);
          try_candidates ((candidate.Discovery.slug, why) :: failures) rest))
  in
  try_candidates [] candidates

(* Missing shared libraries under [env]: ldd on the binary when present,
   name-by-name search otherwise (the bundle-only case). *)
let missing_libraries ?clock input site env =
  match input.binary_path with
  | Some path ->
    Edc.missing_libraries ?clock site env ~binary_path:path
      ~needed:input.description.Description.needed
  | None ->
    input.description.Description.needed
    |> List.filter (fun name ->
           not (Resolve_model.present_at_target site env name))

let evaluate_inner ?clock site env (input : input) : Predict.t =
  let d = input.description in
  let disc = input.discovery in
  let check name compatible f =
    Feam_obs.Trace.with_span name @@ fun () ->
    let r = f () in
    Feam_obs.Trace.set_attr "compatible" (Feam_obs.Span.Bool (compatible r));
    r
  in
  let isa =
    check "predict.check.isa"
      (fun c -> c.Predict.isa_compatible)
      (fun () -> isa_determinant d disc)
  in
  let clib =
    check "predict.check.clib"
      (fun c -> c.Predict.clib_compatible)
      (fun () -> clib_determinant d disc)
  in
  if not (isa.Predict.isa_compatible && clib.Predict.clib_compatible) then
    (* Paper §V.C: only when ISA and C library are compatible do we
       proceed to the MPI stack and shared-library determinants. *)
    let reasons =
      (if isa.Predict.isa_compatible then []
       else
         [
           Printf.sprintf "incompatible ISA: binary is %s (%s)"
             (Feam_elf.Types.machine_uname isa.Predict.binary_machine)
             (match isa.Predict.site_machine with
             | Some m -> "site is " ^ Feam_elf.Types.machine_uname m
             | None -> "site architecture unknown");
         ])
      @
      if clib.Predict.clib_compatible then []
      else
        [
          Printf.sprintf "C library too old: binary requires %s, site has %s"
            (match clib.Predict.required with
            | Some v -> Version.to_string v
            | None -> "?")
            (match clib.Predict.available with
            | Some v -> Version.to_string v
            | None -> "unknown");
        ]
    in
    {
      Predict.verdict = Predict.Not_ready reasons;
      determinants = { Predict.isa; stack = None; clib; libs = None };
    }
  else
    (* MPI stack determinant. *)
    let candidates, selection, stack_check =
      Feam_obs.Trace.with_span "predict.check.stack" @@ fun () ->
      let candidates = candidate_stacks d disc in
      let requested_impl =
        Option.map (fun i -> i.Mpi_ident.impl) d.Description.mpi
      in
      let selection, probe_failures =
        if requested_impl = None then (None, [])
        else select_stack ?clock input site env candidates
      in
      let stack_check =
        {
          Predict.stack_compatible =
            (requested_impl = None || selection <> None);
          requested_impl;
          candidates_found = List.map (fun c -> c.Discovery.slug) candidates;
          functioning =
            Option.map (fun (c, _) -> c.Discovery.slug) selection;
          probe_failures;
        }
      in
      Feam_obs.Trace.set_attr "compatible"
        (Feam_obs.Span.Bool stack_check.Predict.stack_compatible);
      Feam_obs.Trace.set_attr "candidates"
        (Feam_obs.Span.Int (List.length candidates));
      (candidates, selection, stack_check)
    in
    if not stack_check.Predict.stack_compatible then
      let reason =
        if candidates = [] then
          "no compatible MPI implementation available at the target site"
        else
          Printf.sprintf
            "no functioning compatible MPI stack (%d candidate(s) failed probes)"
            (List.length candidates)
      in
      {
        Predict.verdict = Predict.Not_ready [ reason ];
        determinants =
          { Predict.isa; stack = Some stack_check; clib; libs = None };
      }
    else
      (* Shared-library determinant, under the chosen stack's session. *)
      let resolution, resolved_by_copies, libs_check, final_env =
        Feam_obs.Trace.with_span "predict.check.libs" @@ fun () ->
        let session_env =
          match selection with
          | Some (_, install) -> Modules_tool.load_stack env install
          | None -> env
        in
        let missing = missing_libraries ?clock input site session_env in
        if missing <> [] then
          Log.info (fun m ->
              m "missing shared libraries: %s" (String.concat ", " missing));
        let resolution =
          match (missing, input.bundle) with
          | [], _ -> None
          | _ :: _, Some bundle ->
            Some
              (Resolve_model.resolve ?clock input.config site session_env ~bundle
                 ~target_glibc:disc.Discovery.glibc
                 ~binary_machine:d.Description.machine
                 ~binary_class:d.Description.elf_class ~missing)
          | _ :: _, None -> None
        in
        let resolved_by_copies, unresolved, final_env =
          match resolution with
          | None ->
            ([], List.map (fun m -> (m, "no source-phase bundle available")) missing,
             session_env)
          | Some r ->
            ( List.map fst r.Resolve_model.staged,
              List.map
                (fun (name, rej) -> (name, Resolve_model.rejection_to_string rej))
                r.Resolve_model.failed,
              r.Resolve_model.env )
        in
        let libs_check =
          {
            Predict.libs_compatible = unresolved = [];
            missing;
            resolved_by_copies;
            unresolved;
          }
        in
        Feam_obs.Trace.set_attr "compatible"
          (Feam_obs.Span.Bool libs_check.Predict.libs_compatible);
        Feam_obs.Trace.set_attr "missing"
          (Feam_obs.Span.Int (List.length missing));
        (resolution, resolved_by_copies, libs_check, final_env)
      in
      let determinants =
        {
          Predict.isa;
          stack = Some stack_check;
          clib;
          libs = Some libs_check;
        }
      in
      if libs_check.Predict.libs_compatible then
        let launcher =
          match stack_check.Predict.requested_impl with
          | Some impl -> Config.launcher input.config impl
          | None -> ""
        in
        let plan =
          {
            Predict.chosen_stack_slug = stack_check.Predict.functioning;
            module_loads = Option.to_list stack_check.Predict.functioning;
            ld_library_path_additions =
              (if resolved_by_copies = [] then []
               else [ input.config.Config.staging_dir ]);
            staged_copies =
              (match resolution with
              | Some r -> r.Resolve_model.staged
              | None -> []);
            launcher;
          }
        in
        ignore final_env;
        { Predict.verdict = Predict.Ready plan; determinants }
      else
        let reasons =
          libs_check.Predict.unresolved
          |> List.map (fun (name, why) ->
                 Printf.sprintf "missing shared library %s (%s)" name why)
        in
        { Predict.verdict = Predict.Not_ready reasons; determinants }

let evaluate ?clock site env (input : input) : Predict.t =
  Feam_obs.Trace.with_span "tec.evaluate"
    ~attrs:
      [ ("binary", Feam_obs.Span.Str input.description.Description.path) ]
  @@ fun () ->
  let t = evaluate_inner ?clock site env input in
  let outcome = if Predict.is_ready t then "ready" else "not_ready" in
  Feam_obs.Metrics.incr "predict.outcome" ~labels:[ ("result", outcome) ];
  Feam_obs.Trace.set_attr "verdict" (Feam_obs.Span.Str outcome);
  t
