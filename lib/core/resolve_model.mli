(** The resolution model (paper §IV): missing shared libraries are
    supplied by making copies from the guaranteed execution environment
    available at runtime.  Each candidate copy is vetted by recursively
    applying the prediction model to it — a shared library is a binary
    too — and usable copies are staged and exposed through the runtime
    environment. *)

type rejection =
  | No_copy_available
  | Copy_wrong_isa
  | Copy_clib_incompatible of {
      copy_requires : Feam_util.Version.t;
      target_has : Feam_util.Version.t option;
    }
  | Copy_dependency_unresolvable of string

val rejection_to_string : rejection -> string

type outcome = {
  staged : (string * string) list;  (** needed name -> staged path *)
  staged_keys : (string * string) list;
      (** needed name -> depot content key (hex); empty without a depot *)
  failed : (string * rejection) list;
  env : Feam_sysmodel.Env.t;  (** with the staging directory exposed *)
}

(** A depot handle for staging: copies are interned into the shared
    store, and transfer cost is charged only for objects the target site
    does not already hold in the possession index. *)
type depot

val depot :
  store:Feam_depot.Store.t ->
  possession:Feam_depot.Planner.Possession.index ->
  depot

(** Directories searched when checking whether a name is already present
    at the target. *)
val search_dirs_for_name :
  Feam_sysmodel.Site.t -> Feam_sysmodel.Env.t -> string list

val present_at_target :
  Feam_sysmodel.Site.t -> Feam_sysmodel.Env.t -> string -> bool

(** Attempt to resolve every name in [missing] from the bundle's copies;
    stages usable copies (and their staged-only dependencies) into the
    configuration's staging directory. *)
val resolve :
  ?clock:Feam_util.Sim_clock.t ->
  ?depot:depot ->
  Config.t ->
  Feam_sysmodel.Site.t ->
  Feam_sysmodel.Env.t ->
  bundle:Bundle.t ->
  target_glibc:Feam_util.Version.t option ->
  binary_machine:Feam_elf.Types.machine ->
  binary_class:Feam_elf.Types.elf_class ->
  missing:string list ->
  outcome
