(** Serialization of source-phase bundles: the artifact the user copies
    from the guaranteed execution environment to each target site
    (paper §V).

    Line-oriented text container with base64-embedded ELF images.
    Derived description fields (required C library version, MPI
    identification) are recomputed on load from the stored primitives. *)

(** First line of every bundle artifact. *)
val magic : string

(** First line of every depot-backed manifest artifact. *)
val manifest_magic : string

type parse_error = { line : int; message : string }

val parse_error_to_string : parse_error -> string

(** What makes an entry name unsafe to load: [Duplicate] names collide
    in the staging directory, [Traversal] names ([".."] components)
    escape it. *)
type entry_issue = Duplicate | Traversal

val entry_issue_to_string : entry_issue -> string

type load_error =
  | Syntax of parse_error
  | Malformed of string
  | Unsafe_entry of { section : string; name : string; issue : entry_issue }

val load_error_to_string : load_error -> string

(** Does this entry name contain a [".."] path component? *)
val name_traverses : string -> bool

(** Serialize a bundle to its textual artifact. *)
val render : Bundle.t -> string

(** Read a bundle artifact back, rejecting duplicate and
    path-traversing entry names with a typed error. *)
val parse_checked : string -> (Bundle.t, load_error) result

(** {!parse_checked} with errors rendered to strings. *)
val parse : string -> (Bundle.t, string) result

(** Serialize a depot-backed manifest: the same container as a bundle,
    but payloads are [object:] content keys instead of embedded
    [data:]. *)
val render_manifest : Bundle_manifest.t -> string

(** Read a manifest artifact back, with the same entry-name safety
    checks as {!parse_checked}. *)
val parse_manifest_checked : string -> (Bundle_manifest.t, load_error) result

(** {!parse_manifest_checked} with errors rendered to strings. *)
val parse_manifest : string -> (Bundle_manifest.t, string) result
