(* Serialization of source-phase bundles.

   The paper's workflow has the user copy the source phase's output to
   each target site (§V); this module defines that artifact: a
   line-oriented text container with base64-embedded ELF images.  The
   format is self-contained — descriptions are stored as their primitive
   fields and the derived ones (required C library version, MPI
   identification) are recomputed on load, so a bundle written by one
   FEAM version parses under another as long as the primitives hold. *)

open Feam_util

let magic = "FEAM-BUNDLE 1"
let manifest_magic = "FEAM-MANIFEST 1"

(* -- rendering ------------------------------------------------------------ *)

let opt_field = function None -> "-" | Some s -> s

let render_description buf prefix (d : Description.t) =
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "%spath: %s\n" prefix d.Description.path;
  addf "%sformat: %s\n" prefix d.Description.file_format;
  addf "%ssoname: %s\n" prefix
    (opt_field (Option.map Soname.to_string d.Description.soname));
  addf "%sneeded: %s\n" prefix (String.concat "," d.Description.needed);
  addf "%srpath: %s\n" prefix (opt_field d.Description.rpath);
  addf "%srunpath: %s\n" prefix (opt_field d.Description.runpath);
  List.iter
    (fun (file, versions) ->
      addf "%sverneed: %s=%s\n" prefix file (String.concat ";" versions))
    d.Description.verneeds;
  addf "%scompiler: %s\n" prefix
    (opt_field d.Description.provenance.Objdump_parse.compiler_banner);
  addf "%sbuild-os: %s\n" prefix
    (opt_field d.Description.provenance.Objdump_parse.build_os)

let render_discovery buf (disc : Discovery.t) =
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "[discovery]\n";
  addf "env-type: %s\n"
    (match disc.Discovery.env_type with
    | `Guaranteed -> "guaranteed"
    | `Target -> "target");
  addf "machine: %s\n"
    (opt_field (Option.map Feam_elf.Types.machine_uname disc.Discovery.machine));
  addf "os: %s\n" (opt_field disc.Discovery.os);
  addf "kernel: %s\n" (opt_field disc.Discovery.kernel);
  addf "glibc: %s\n"
    (opt_field (Option.map Version.to_string disc.Discovery.glibc));
  List.iter
    (fun s -> addf "stack: %s\n" s.Discovery.slug)
    disc.Discovery.stacks;
  addf "current-stack: %s\n"
    (opt_field (Option.map (fun s -> s.Discovery.slug) disc.Discovery.current_stack))

(* [render bundle] serializes a bundle to its textual artifact. *)
let render (b : Bundle.t) : string =
  let buf = Buffer.create 65536 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "%s\n" magic;
  addf "created-at: %s\n" b.Bundle.created_at;
  addf "unlocatable: %s\n" (String.concat "," b.Bundle.unlocatable);
  addf "\n[description]\n";
  render_description buf "" b.Bundle.binary_description;
  (match b.Bundle.binary_bytes with
  | Some bytes ->
    addf "\n[binary]\n";
    addf "declared-size: %d\n" b.Bundle.binary_declared_size;
    addf "data: %s\n" (Base64.encode bytes)
  | None -> ());
  List.iter
    (fun (c : Bdc.library_copy) ->
      addf "\n[copy]\n";
      addf "request: %s\n" c.Bdc.copy_request;
      addf "origin: %s\n" c.Bdc.copy_origin_path;
      addf "declared-size: %d\n" c.Bdc.copy_declared_size;
      render_description buf "desc-" c.Bdc.copy_description;
      addf "data: %s\n" (Base64.encode c.Bdc.copy_bytes))
    b.Bundle.copies;
  List.iter
    (fun (p : Bundle.probe) ->
      addf "\n[probe]\n";
      addf "name: %s\n" p.Bundle.probe_name;
      addf "stack: %s\n" p.Bundle.probe_stack_slug;
      addf "declared-size: %d\n" p.Bundle.probe_declared_size;
      addf "data: %s\n" (Base64.encode p.Bundle.probe_bytes))
    b.Bundle.probes;
  addf "\n";
  render_discovery buf b.Bundle.source_discovery;
  Buffer.contents buf

(* [render_manifest m] serializes a depot-backed manifest: the same
   container as a bundle, but every payload is an `object:` content key
   resolved against a depot instead of embedded `data:`. *)
let render_manifest (m : Bundle_manifest.t) : string =
  let buf = Buffer.create 4096 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let hex = Feam_depot.Chash.to_hex in
  addf "%s\n" manifest_magic;
  addf "created-at: %s\n" m.Bundle_manifest.man_created_at;
  addf "unlocatable: %s\n" (String.concat "," m.Bundle_manifest.man_unlocatable);
  addf "\n[description]\n";
  render_description buf "" m.Bundle_manifest.man_description;
  (match m.Bundle_manifest.man_binary with
  | Some (key, size) ->
    addf "\n[binary]\n";
    addf "declared-size: %d\n" size;
    addf "object: %s\n" (hex key)
  | None -> ());
  List.iter
    (fun (e : Bundle_manifest.entry) ->
      addf "\n[copy]\n";
      addf "request: %s\n" e.Bundle_manifest.me_request;
      addf "origin: %s\n" e.Bundle_manifest.me_origin;
      addf "declared-size: %d\n" e.Bundle_manifest.me_size;
      render_description buf "desc-" e.Bundle_manifest.me_description;
      addf "object: %s\n" (hex e.Bundle_manifest.me_key))
    m.Bundle_manifest.man_entries;
  List.iter
    (fun (p : Bundle_manifest.probe_ref) ->
      addf "\n[probe]\n";
      addf "name: %s\n" p.Bundle_manifest.mp_name;
      addf "stack: %s\n" p.Bundle_manifest.mp_stack;
      addf "declared-size: %d\n" p.Bundle_manifest.mp_size;
      addf "object: %s\n" (hex p.Bundle_manifest.mp_key))
    m.Bundle_manifest.man_probes;
  addf "\n";
  render_discovery buf m.Bundle_manifest.man_discovery;
  Buffer.contents buf

(* -- parsing ---------------------------------------------------------------- *)

type parse_error = { line : int; message : string }

let parse_error_to_string e =
  Printf.sprintf "bundle parse error at line %d: %s" e.line e.message

(* What makes an entry name unsafe to load (DESIGN §9): [Duplicate]
   names collide in the staging directory, [Traversal] names escape it
   (the target phase stages entries at [staging ^ "/" ^ name]). *)
type entry_issue = Duplicate | Traversal

let entry_issue_to_string = function
  | Duplicate -> "duplicate entry name"
  | Traversal -> "path traversal in entry name"

type load_error =
  | Syntax of parse_error
  | Malformed of string
  | Unsafe_entry of { section : string; name : string; issue : entry_issue }

let load_error_to_string = function
  | Syntax e -> parse_error_to_string e
  | Malformed m -> m
  | Unsafe_entry { section; name; issue } ->
    Printf.sprintf "unsafe [%s] entry %S: %s" section name
      (entry_issue_to_string issue)

(* A name with a ".." path component escapes the staging directory when
   the target phase concatenates it onto the staging root. *)
let name_traverses name =
  String.split_on_char '/' name |> List.exists (( = ) "..")

(* Cut the text into sections: a header block plus "[name]" blocks of
   (key, value) pairs, preserving repeated keys in order. *)
let sectionize ~magic text =
  let lines = String.split_on_char '\n' text in
  let err line message = Error { line; message } in
  let rec go lineno current sections = function
    | [] -> Ok (List.rev (current :: sections))
    | line :: rest ->
      let lineno = lineno + 1 in
      let line = String.trim line in
      if line = "" then go lineno current sections rest
      else if String.length line > 1 && line.[0] = '[' then
        if line.[String.length line - 1] <> ']' then
          err lineno "malformed section header"
        else
          let name = String.sub line 1 (String.length line - 2) in
          go lineno (name, []) (current :: sections) rest
      else
        match String.index_opt line ':' with
        | None -> err lineno ("expected 'key: value', got " ^ line)
        | Some i ->
          let key = String.trim (String.sub line 0 i) in
          let value =
            String.trim (String.sub line (i + 1) (String.length line - i - 1))
          in
          let name, fields = current in
          go lineno (name, (key, value) :: fields) sections rest
  in
  match lines with
  | first :: rest when String.trim first = magic -> (
    match go 1 ("", []) [] rest with
    | Ok sections ->
      Ok (List.map (fun (name, fields) -> (name, List.rev fields)) sections)
    | Error _ as e -> e)
  | _ -> err 1 "missing FEAM-BUNDLE magic"

let field fields key = List.assoc_opt key fields
let fields_all fields key =
  List.filter_map (fun (k, v) -> if k = key then Some v else None) fields

(* Reject duplicate and traversing entry names across a parsed artifact's
   [copy] and [probe] sections, before any payload is decoded. *)
let check_entries sections =
  let check section key seen fields =
    match field fields key with
    | None -> Ok seen
    | Some name ->
      if name_traverses name then
        Error (Unsafe_entry { section; name; issue = Traversal })
      else if List.mem name seen then
        Error (Unsafe_entry { section; name; issue = Duplicate })
      else Ok (name :: seen)
  in
  let rec go seen_copies seen_probes = function
    | [] -> Ok ()
    | ("copy", fields) :: rest -> (
      match check "copy" "request" seen_copies fields with
      | Error _ as e -> e
      | Ok seen -> go seen seen_probes rest)
    | ("probe", fields) :: rest -> (
      match check "probe" "name" seen_probes fields with
      | Error _ as e -> e
      | Ok seen -> go seen_copies seen rest)
    | _ :: rest -> go seen_copies seen_probes rest
  in
  go [] [] sections

let opt_of = function "-" | "" -> None | s -> Some s

let split_list = function
  | "" -> []
  | s -> String.split_on_char ',' s

let parse_description ~prefix fields : (Description.t, string) result =
  let get key = field fields (prefix ^ key) in
  let require key =
    match get key with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %s%s" prefix key)
  in
  match (require "path", require "format", require "needed") with
  | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e
  | Ok path, Ok file_format, Ok needed -> (
    match Objdump_parse.machine_of_format file_format with
    | None -> Error ("unknown file format: " ^ file_format)
    | Some (machine, elf_class) ->
      let verneeds =
        fields_all fields (prefix ^ "verneed")
        |> List.filter_map (fun entry ->
               match String.index_opt entry '=' with
               | None -> None
               | Some i ->
                 let file = String.sub entry 0 i in
                 let versions =
                   String.sub entry (i + 1) (String.length entry - i - 1)
                   |> String.split_on_char ';'
                   |> List.filter (( <> ) "")
                 in
                 Some (file, versions))
      in
      let needed = split_list needed in
      Ok
        {
          Description.path;
          file_format;
          machine;
          elf_class;
          soname = Option.bind (Option.bind (get "soname") opt_of) Soname.of_string;
          needed;
          rpath = Option.bind (get "rpath") opt_of;
          runpath = Option.bind (get "runpath") opt_of;
          verneeds;
          required_glibc = Description.required_glibc_of_verneeds verneeds;
          mpi = Mpi_ident.identify needed;
          provenance =
            {
              Objdump_parse.compiler_banner =
                Option.bind (get "compiler") opt_of;
              build_os = Option.bind (get "build-os") opt_of;
            };
        })

let parse_data fields =
  match field fields "data" with
  | None -> Error "missing data field"
  | Some b64 -> (
    match Base64.decode b64 with
    | Ok bytes -> Ok bytes
    | Error e -> Error (Base64.error_to_string e))

let parse_int_field fields key ~default =
  match field fields key with
  | None -> default
  | Some v -> ( match int_of_string_opt v with Some n -> n | None -> default)

let parse_discovery fields : Discovery.t =
  let get key = Option.bind (field fields key) opt_of in
  let machine = Option.bind (get "machine") Feam_elf.Types.machine_of_uname in
  let stack_of_slug slug =
    Discovery.parse_stack_slug ~via:Discovery.Modules slug
  in
  {
    Discovery.env_type =
      (match field fields "env-type" with
      | Some "guaranteed" -> `Guaranteed
      | _ -> `Target);
    machine;
    elf_class = Option.map Feam_elf.Types.machine_class machine;
    os = get "os";
    kernel = get "kernel";
    glibc = Option.bind (get "glibc") Version.of_string;
    stacks = fields_all fields "stack" |> List.filter_map stack_of_slug;
    current_stack = Option.bind (get "current-stack") stack_of_slug;
  }

(* Assemble a bundle from checked sections. *)
let assemble_bundle sections : (Bundle.t, string) result =
    let header =
      match List.assoc_opt "" sections with Some f -> f | None -> []
    in
    let find_section name =
      List.filter_map
        (fun (n, fields) -> if n = name then Some fields else None)
        sections
    in
    (match find_section "description" with
    | [] -> Error "missing [description] section"
    | desc_fields :: _ -> (
      match parse_description ~prefix:"" desc_fields with
      | Error e -> Error e
      | Ok binary_description ->
        let binary_bytes, binary_declared_size =
          match find_section "binary" with
          | fields :: _ -> (
            match parse_data fields with
            | Ok bytes -> (Some bytes, parse_int_field fields "declared-size" ~default:0)
            | Error _ -> (None, 0))
          | [] -> (None, 0)
        in
        let copies =
          find_section "copy"
          |> List.filter_map (fun fields ->
                 match
                   ( field fields "request",
                     parse_description ~prefix:"desc-" fields,
                     parse_data fields )
                 with
                 | Some request, Ok description, Ok bytes ->
                   Some
                     {
                       Bdc.copy_request = request;
                       copy_origin_path =
                         Option.value (field fields "origin") ~default:"";
                       copy_bytes = bytes;
                       copy_declared_size =
                         parse_int_field fields "declared-size"
                           ~default:(String.length bytes);
                       copy_description = description;
                     }
                 | _ -> None)
        in
        let probes =
          find_section "probe"
          |> List.filter_map (fun fields ->
                 match (field fields "name", parse_data fields) with
                 | Some name, Ok bytes ->
                   Some
                     {
                       Bundle.probe_name = name;
                       probe_bytes = bytes;
                       probe_stack_slug =
                         Option.value (field fields "stack") ~default:"";
                       probe_declared_size =
                         parse_int_field fields "declared-size"
                           ~default:(String.length bytes);
                     }
                 | _ -> None)
        in
        let source_discovery =
          match find_section "discovery" with
          | fields :: _ -> parse_discovery fields
          | [] ->
            {
              Discovery.env_type = `Guaranteed;
              machine = None;
              elf_class = None;
              os = None;
              kernel = None;
              glibc = None;
              stacks = [];
              current_stack = None;
            }
        in
        Ok
          {
            Bundle.created_at =
              Option.value (field header "created-at") ~default:"unknown";
            binary_description;
            binary_bytes;
            binary_declared_size;
            copies;
            unlocatable =
              split_list (Option.value (field header "unlocatable") ~default:"");
            probes;
            source_discovery;
          }))

(* [parse_checked text] reads a bundle artifact back, rejecting unsafe
   entry names (duplicates, path traversal) with a typed error. *)
let parse_checked (text : string) : (Bundle.t, load_error) result =
  match sectionize ~magic text with
  | Error e -> Error (Syntax e)
  | Ok sections -> (
    match check_entries sections with
    | Error _ as e -> e
    | Ok () -> (
      match assemble_bundle sections with
      | Ok b -> Ok b
      | Error m -> Error (Malformed m)))

(* [parse text] is {!parse_checked} with errors rendered to strings. *)
let parse (text : string) : (Bundle.t, string) result =
  Result.map_error load_error_to_string (parse_checked text)

(* -- manifest parsing ----------------------------------------------------- *)

let parse_key fields =
  match field fields "object" with
  | None -> Error "missing object field"
  | Some hex -> (
    match Feam_depot.Chash.of_hex hex with
    | Some key -> Ok key
    | None -> Error ("malformed content key: " ^ hex))

(* [parse_manifest_checked text] reads a depot-backed manifest artifact,
   applying the same entry-name safety checks as bundles. *)
let parse_manifest_checked (text : string) :
    (Bundle_manifest.t, load_error) result =
  match sectionize ~magic:manifest_magic text with
  | Error e -> Error (Syntax e)
  | Ok sections -> (
    match check_entries sections with
    | Error _ as e -> e
    | Ok () ->
      let header =
        match List.assoc_opt "" sections with Some f -> f | None -> []
      in
      let find_section name =
        List.filter_map
          (fun (n, fields) -> if n = name then Some fields else None)
          sections
      in
      let ( let* ) = Result.bind in
      let result =
        let* desc_fields =
          match find_section "description" with
          | [] -> Error "missing [description] section"
          | fields :: _ -> Ok fields
        in
        let* man_description = parse_description ~prefix:"" desc_fields in
        let* man_binary =
          match find_section "binary" with
          | [] -> Ok None
          | fields :: _ ->
            let* key = parse_key fields in
            Ok (Some (key, parse_int_field fields "declared-size" ~default:0))
        in
        let* man_entries =
          List.fold_left
            (fun acc fields ->
              let* acc = acc in
              let* request =
                match field fields "request" with
                | Some r -> Ok r
                | None -> Error "copy section missing request field"
              in
              let* description = parse_description ~prefix:"desc-" fields in
              let* key = parse_key fields in
              Ok
                ({
                   Bundle_manifest.me_request = request;
                   me_key = key;
                   me_size = parse_int_field fields "declared-size" ~default:0;
                   me_origin = Option.value (field fields "origin") ~default:"";
                   me_description = description;
                 }
                 :: acc))
            (Ok [])
            (find_section "copy")
        in
        let* man_probes =
          List.fold_left
            (fun acc fields ->
              let* acc = acc in
              let* name =
                match field fields "name" with
                | Some n -> Ok n
                | None -> Error "probe section missing name field"
              in
              let* key = parse_key fields in
              Ok
                ({
                   Bundle_manifest.mp_name = name;
                   mp_key = key;
                   mp_size = parse_int_field fields "declared-size" ~default:0;
                   mp_stack = Option.value (field fields "stack") ~default:"";
                 }
                 :: acc))
            (Ok [])
            (find_section "probe")
        in
        let man_discovery =
          match find_section "discovery" with
          | fields :: _ -> parse_discovery fields
          | [] ->
            {
              Discovery.env_type = `Guaranteed;
              machine = None;
              elf_class = None;
              os = None;
              kernel = None;
              glibc = None;
              stacks = [];
              current_stack = None;
            }
        in
        Ok
          {
            Bundle_manifest.man_created_at =
              Option.value (field header "created-at") ~default:"unknown";
            man_description;
            man_binary;
            man_entries = List.rev man_entries;
            man_unlocatable =
              split_list (Option.value (field header "unlocatable") ~default:"");
            man_probes = List.rev man_probes;
            man_discovery;
          }
      in
      Result.map_error (fun m -> Malformed m) result)

let parse_manifest (text : string) : (Bundle_manifest.t, string) result =
  Result.map_error load_error_to_string (parse_manifest_checked text)
