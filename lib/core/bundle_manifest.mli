(** Depot-backed bundles (DESIGN §9): a manifest is a {!Bundle.t} with
    every payload replaced by its content key.  {!of_bundle} interns the
    payloads into a {!Feam_depot.Store.t}; {!to_bundle} resolves the
    keys back, rebuilding the legacy self-contained bundle
    byte-identically (the export path). *)

module Chash := Feam_depot.Chash

type entry = {
  me_request : string;  (** the DT_NEEDED name this object satisfies *)
  me_key : Chash.t;
  me_size : int;
  me_origin : string;
  me_description : Description.t;
}

type probe_ref = {
  mp_name : string;
  mp_key : Chash.t;
  mp_size : int;
  mp_stack : string;
}

type t = {
  man_created_at : string;
  man_description : Description.t;
  man_binary : (Chash.t * int) option;
  man_entries : entry list;
  man_unlocatable : string list;
  man_probes : probe_ref list;
  man_discovery : Discovery.t;
}

(** Intern every payload (binary, library copies, probes) into the store
    and return the manifest of keys.  Copy sidecars record the content
    keys of the copies satisfying their DT_NEEDED names, so the store's
    GC marks through the dependency closure. *)
val of_bundle : Feam_depot.Store.t -> Bundle.t -> t

(** Resolve every key against the store; [Error] names the first missing
    object. *)
val to_bundle : Feam_depot.Store.t -> t -> (Bundle.t, string) result

(** Every distinct content key the manifest references, sorted. *)
val keys : t -> Chash.t list

(** The transfer-planner view: binary first, then the library closure in
    bundle order, then the probes. *)
val wants : t -> Feam_depot.Planner.want list

(** Declared size of the shared-library part, mirroring
    {!Bundle.library_bytes}. *)
val library_bytes : t -> int

(** Declared total, mirroring {!Bundle.total_bytes}. *)
val total_bytes : t -> int
