(** The determinant<-evidence dependency map and the resident evidence
    store: [Tec.decide]'s inputs flattened into flightrec evidence
    atoms, with the map from each atom path to the determinants it
    feeds.  Promoted from the drift observatory so epoch drift
    ([Feam_drift.Invalidate]) and the resident prediction service
    ([Feam_serve]) share one invalidation engine. *)

type owner = Site_owner of string | Binary_owner of string

val owner_to_string : owner -> string

val compare_owner : owner -> owner -> int

(** The four determinant names, in the paper's evaluation order,
    matching the flight recorder's decision records. *)
val all_determinants : string list

(** Determinants a site-owned atom path feeds. *)
val site_determinants : string -> string list

(** Determinants a binary-owned atom path feeds. *)
val binary_determinants : string -> string list

(** Determinants an (owner, path) atom feeds.  Unknown paths
    conservatively return [all_determinants] — soundness over
    precision. *)
val determinants_of_atom : owner -> string -> string list

(** A target-site discovery as ["discovery."]-prefixed atoms. *)
val discovery_atoms : Discovery.t -> (string * string) list

(** A binary description as ["description."]-prefixed atoms. *)
val description_atoms : Description.t -> (string * string) list

(** A mutable store of the fleet's current evidence atoms, keyed by
    owner.  [replace] diffs an owner's fresh capture against the
    resident atoms and returns the changes — each already annotated
    with the determinants it invalidates — so callers re-evaluate only
    what the changes reach. *)
module Store : sig
  type change = {
    ev_owner : owner;
    ev_path : string;
    ev_before : string option;  (** resident value; [None] if added *)
    ev_after : string option;  (** fresh value; [None] if removed *)
    ev_determinants : string list;
        (** determinants the atom feeds; [[]] means verdict-inert *)
  }

  type t

  val create : unit -> t

  (** Resident atoms of one owner, sorted by path. *)
  val atoms : t -> owner -> (string * string) list

  (** Resident owners, sorted sites-then-binaries. *)
  val owners : t -> owner list

  (** Total resident atom count. *)
  val size : t -> int

  (** Replace an owner's atoms with a fresh capture; returns the
      changes sorted by path (empty when nothing changed). *)
  val replace : t -> owner -> (string * string) list -> change list

  (** Drop an owner; returns one removal change per resident atom. *)
  val remove : t -> owner -> change list
end
