(* Environment Discovery Component (paper §V.B).

   Gathers information about a computing environment: ISA via uname,
   OS via /proc/version and /etc/*release, the C library version by
   running the C library binary (falling back to its API, here its
   version definitions), and the available/loaded MPI stacks via the
   user-environment management tools with a path-search fallback. *)

open Feam_util
open Feam_sysmodel

(* -- ISA ----------------------------------------------------------------- *)

let discover_isa ?clock site =
  match Utilities.uname_p ?clock site with
  | Ok uname -> Feam_elf.Types.machine_of_uname uname
  | Error _ -> None

(* -- OS ------------------------------------------------------------------ *)

let discover_os ?clock site =
  (* /etc/*release confirmed against /proc/version (paper §V.B). *)
  match Utilities.etc_release ?clock site with
  | (_, body) :: _ -> Some (String.trim (List.hd (String.split_on_char '\n' body)))
  | [] -> None

let discover_kernel ?clock site =
  let text = Utilities.proc_version ?clock site in
  (* "Linux version 2.6.18-194.el5 (...)" *)
  match String.split_on_char ' ' text with
  | "Linux" :: "version" :: v :: _ -> Some v
  | _ -> None

(* -- C library ------------------------------------------------------------ *)

(* Parse the banner printed when the C library binary is executed:
   "GNU C Library stable release version 2.5, by Roland McGrath..." *)
let parse_glibc_banner banner =
  let tokens =
    String.split_on_char '\n' banner
    |> List.concat_map (String.split_on_char ' ')
  in
  let rec after_version = function
    | "version" :: v :: _ ->
      let v =
        if String.length v > 0 && v.[String.length v - 1] = ',' then
          String.sub v 0 (String.length v - 1)
        else v
      in
      Version.of_string v
    | _ :: rest -> after_version rest
    | [] -> None
  in
  after_version tokens

(* Fallback: "determine the version using the C library API" — read the
   newest version definition out of the installed libc image. *)
let glibc_via_api site path =
  match Vfs.find (Site.vfs site) path with
  | Some { Vfs.kind = Vfs.Elf bytes; _ } -> (
    match Feam_elf.Reader.parse bytes with
    | Ok parsed ->
      (Feam_elf.Reader.spec parsed).Feam_elf.Spec.verdefs
      |> List.filter_map Feam_toolchain.Glibc.version_of_symbol
      |> List.fold_left
           (fun acc v ->
             match acc with None -> Some v | Some a -> Some (Version.max a v))
           None
    | Error _ -> None)
  | _ -> None

let discover_glibc ?clock site =
  match Utilities.find_libc ?clock site with
  | None -> None
  | Some path -> (
    (* Running the C library binary prints its banner; if it cannot be
       run (e.g. foreign format), fall back to the API. *)
    match parse_glibc_banner (Utilities.glibc_banner ?clock site) with
    | Some v -> Some v
    | None -> glibc_via_api site path)

(* -- MPI stacks ------------------------------------------------------------ *)

(* Discovery through the user-environment management tools. *)
let stacks_via_modules ?clock site =
  Cost.charge clock Cost.module_query;
  match Modules_tool.render_avail site with
  | None -> None
  | Some listing ->
    let via =
      match Site.modules_flavor site with
      | Site.Softenv -> Discovery.Softenv
      | _ -> Discovery.Modules
    in
    let names =
      String.split_on_char '\n' listing
      |> List.map String.trim
      |> List.filter (fun l -> l <> "" && not (String.starts_with ~prefix:"---" l))
      |> List.map (fun l ->
             if String.length l > 0 && l.[0] = '+' then
               String.sub l 1 (String.length l - 1)
             else l)
    in
    Some (List.filter_map (Discovery.parse_stack_slug ~via) names)

(* Fallback: search for MPI libraries and wrappers in the filesystem and
   parse stack identity out of path naming (paper §V.B). *)
let stacks_via_path_search ?clock site =
  let candidates =
    match Utilities.locate ?clock site "libmpi" with
    | Ok paths -> paths
    | Error _ -> (
      match
        Utilities.find_in_dirs ?clock site
          ([ "/opt"; "/usr/local" ] @ Site.default_lib_dirs site)
          "libmpi"
      with
      | Ok paths -> paths
      | Error _ -> [])
  in
  candidates
  |> List.filter_map (fun path ->
         (* "/opt/openmpi-1.4.3-intel/lib/libmpi.so.0" -> slug component *)
         match String.split_on_char '/' path with
         | "" :: "opt" :: slug :: _ ->
           Discovery.parse_stack_slug ~via:Discovery.Path_search slug
         | _ -> None)
  |> List.sort_uniq (fun a b -> String.compare a.Discovery.slug b.Discovery.slug)

let discover_stacks ?clock site =
  match stacks_via_modules ?clock site with
  | Some (_ :: _ as stacks) -> stacks
  | Some [] | None -> stacks_via_path_search ?clock site

(* Currently loaded stack: module list first, PATH inspection second. *)
let discover_current_stack ?clock site env =
  Cost.charge clock Cost.module_query;
  match Modules_tool.current_stack site env with
  | None -> None
  | Some install ->
    let slug = Stack_install.module_name install in
    Discovery.parse_stack_slug ~via:Discovery.Modules slug

(* -- Missing shared libraries (for a given binary's needs) ---------------- *)

(* ldd when usable; otherwise search for each name (paper §V.B). *)
let missing_libraries ?clock site env ~binary_path ~needed =
  match Feam_dynlinker.Ldd.run ?clock site env binary_path with
  | Ok resolution -> Feam_dynlinker.Ldd.missing_libraries resolution
  | Error _ ->
    needed
    |> List.filter (fun name -> Bdc.locate_library ?clock site env name = None)

(* -- Full discovery -------------------------------------------------------- *)

let discover ?clock ~env_type site env =
  let env_label =
    match env_type with `Guaranteed -> "guaranteed" | `Target -> "target"
  in
  Feam_obs.Ledger.with_stage "edc.discover" @@ fun () ->
  Feam_obs.Prof.with_timer ~labels:[ ("env", env_label) ] "edc.discover"
  @@ fun () ->
  Feam_obs.Trace.with_span "edc.discover"
    ~attrs:
      [
        ("site", Feam_obs.Span.Str (Site.name site));
        ("env", Feam_obs.Span.Str env_label);
      ]
  @@ fun () ->
  (* Each discovered environment fact is journaled as evidence where it
     was found, inside its own sub-span. *)
  let sub name f = Feam_obs.Trace.with_span name f in
  let fact kind value =
    Feam_flightrec.Recorder.evidence ~stage:"edc" ~kind
      [
        ("env", Json.Str env_label);
        ("value", match value with Some v -> Json.Str v | None -> Json.Null);
      ]
  in
  let machine =
    sub "edc.isa" (fun () ->
        let m = discover_isa ?clock site in
        fact "isa" (Option.map Feam_elf.Types.machine_uname m);
        m)
  in
  let os =
    sub "edc.os" (fun () ->
        let os = discover_os ?clock site in
        fact "os" os;
        os)
  in
  let kernel =
    sub "edc.kernel" (fun () ->
        let k = discover_kernel ?clock site in
        fact "kernel" k;
        k)
  in
  let glibc =
    sub "edc.glibc" (fun () ->
        let g = discover_glibc ?clock site in
        fact "glibc" (Option.map Version.to_string g);
        g)
  in
  let stacks =
    sub "edc.stacks" (fun () ->
        let stacks = discover_stacks ?clock site in
        Feam_flightrec.Recorder.evidence ~stage:"edc" ~kind:"stacks"
          [
            ("env", Json.Str env_label);
            ( "value",
              Json.List
                (List.map (fun s -> Json.Str s.Discovery.slug) stacks) );
          ];
        stacks)
  in
  let current_stack =
    sub "edc.current_stack" (fun () ->
        let c = discover_current_stack ?clock site env in
        fact "current_stack" (Option.map (fun s -> s.Discovery.slug) c);
        c)
  in
  Feam_obs.Metrics.incr "edc.discoveries" ~labels:[ ("env", env_label) ];
  Feam_obs.Trace.set_attr "stacks" (Feam_obs.Span.Int (List.length stacks));
  {
    Discovery.env_type;
    machine;
    elf_class = Option.map Feam_elf.Types.machine_class machine;
    os;
    kernel;
    glibc;
    stacks;
    current_stack;
  }
