(** The Environment Discovery Component's output record (paper Figure 4):
    ISA format, operating system, C library version, available and loaded
    MPI stacks. *)

type via = Modules | Softenv | Path_search

type discovered_stack = {
  slug : string;  (** e.g. "openmpi-1.4.3-intel" *)
  impl : Feam_mpi.Impl.t;
  impl_version : Feam_util.Version.t option;
  compiler_family : Feam_mpi.Compiler.family option;
  discovered_via : via;
}

type t = {
  env_type : [ `Target | `Guaranteed ];
  machine : Feam_elf.Types.machine option;
  elf_class : Feam_elf.Types.elf_class option;
  os : string option;  (** distribution, informational (paper §V.B) *)
  kernel : string option;  (** from /proc/version *)
  glibc : Feam_util.Version.t option;
  stacks : discovered_stack list;  (** available MPI stacks *)
  current_stack : discovered_stack option;  (** loaded in this session *)
}

val via_to_string : via -> string

(** Machine-readable discovery-method slugs (journal serialization). *)
val via_slug : via -> string

val via_of_slug : string -> via option

(** Parse a stack slug of the conventional "impl-version-compiler" shape,
    as real sites' path naming reveals (paper §V.B).  [None] when the
    first component is not a known MPI implementation. *)
val parse_stack_slug : via:via -> string -> discovered_stack option

(** JSON round-trip for the flight recorder's journal: stacks stored
    as slug + discovery method, re-derived on load (same contract as
    the bundle format).  [of_json] is total over objects — absent or
    malformed fields degrade to [None]/[[]]. *)
val to_json : t -> Feam_util.Json.t

val of_json : Feam_util.Json.t -> (t, string) result

val pp_stack : discovered_stack Fmt.t
val pp : t Fmt.t
