(* Depot-backed bundles: a manifest is a bundle with every payload
   replaced by its content key.  Interning a bundle stores each distinct
   ELF image once ({!of_bundle}); resolving a manifest against the same
   depot rebuilds the exact legacy bundle ({!to_bundle}), so the
   self-contained Bundle_io format remains available as an export path
   while transfer planning operates on keys and byte counts alone. *)

open Feam_util
module Store = Feam_depot.Store
module Chash = Feam_depot.Chash

type entry = {
  me_request : string; (* the DT_NEEDED name this object satisfies *)
  me_key : Chash.t;
  me_size : int;
  me_origin : string;
  me_description : Description.t;
}

type probe_ref = {
  mp_name : string;
  mp_key : Chash.t;
  mp_size : int;
  mp_stack : string;
}

type t = {
  man_created_at : string;
  man_description : Description.t;
  man_binary : (Chash.t * int) option;
  man_entries : entry list;
  man_unlocatable : string list;
  man_probes : probe_ref list;
  man_discovery : Discovery.t;
}

let soname_meta (d : Description.t) =
  match d.Description.soname with
  | None -> (None, None)
  | Some s ->
    ( Some (Soname.to_string s),
      match Soname.version s with
      | [] -> None
      | v -> Some (String.concat "." (List.map string_of_int v)) )

(* [of_bundle store bundle] — intern every payload (binary, copies,
   probes) and return the manifest of keys.  Copy sidecars record the
   dependency keys of the copies that satisfy their DT_NEEDED names, so
   the store's GC can mark through the closure. *)
let of_bundle store (b : Bundle.t) =
  (* keys of every copy first (pure hashing), so sidecar dependency
     lists can be complete at intern time *)
  let key_of_request =
    List.map
      (fun (c : Bdc.library_copy) ->
        (c.Bdc.copy_request, Chash.of_bytes c.Bdc.copy_bytes))
      b.Bundle.copies
  in
  let provider = Some b.Bundle.created_at in
  let man_entries =
    List.map
      (fun (c : Bdc.library_copy) ->
        let d = c.Bdc.copy_description in
        let soname, version = soname_meta d in
        let deps =
          d.Description.needed
          |> List.filter_map (fun n ->
                 Option.map Chash.to_hex (List.assoc_opt n key_of_request))
        in
        let _, key =
          Store.intern store
            ~meta:
              (Store.meta ?soname ?version ?provider
                 ~origin:c.Bdc.copy_origin_path ~deps
                 ~size:c.Bdc.copy_declared_size ())
            c.Bdc.copy_bytes
        in
        {
          me_request = c.Bdc.copy_request;
          me_key = key;
          me_size = c.Bdc.copy_declared_size;
          me_origin = c.Bdc.copy_origin_path;
          me_description = d;
        })
      b.Bundle.copies
  in
  let man_binary =
    match b.Bundle.binary_bytes with
    | None -> None
    | Some bytes ->
      let _, key =
        Store.intern store
          ~meta:
            (Store.meta ?provider
               ~origin:b.Bundle.binary_description.Description.path
               ~deps:(List.map (fun e -> Chash.to_hex e.me_key) man_entries)
               ~size:b.Bundle.binary_declared_size ())
          bytes
      in
      Some (key, b.Bundle.binary_declared_size)
  in
  let man_probes =
    List.map
      (fun (p : Bundle.probe) ->
        let _, key =
          Store.intern store
            ~meta:
              (Store.meta ?provider ~origin:p.Bundle.probe_name
                 ~size:p.Bundle.probe_declared_size ())
            p.Bundle.probe_bytes
        in
        {
          mp_name = p.Bundle.probe_name;
          mp_key = key;
          mp_size = p.Bundle.probe_declared_size;
          mp_stack = p.Bundle.probe_stack_slug;
        })
      b.Bundle.probes
  in
  {
    man_created_at = b.Bundle.created_at;
    man_description = b.Bundle.binary_description;
    man_binary;
    man_entries;
    man_unlocatable = b.Bundle.unlocatable;
    man_probes;
    man_discovery = b.Bundle.source_discovery;
  }

(* [to_bundle store t] — resolve every key; the rebuilt bundle is
   byte-identical to the one interned (the export path). *)
let to_bundle store t =
  let fetch what key =
    match Store.find store key with
    | Some e -> Ok e.Store.e_bytes
    | None ->
      Error
        (Printf.sprintf "depot is missing %s object %s" what (Chash.to_hex key))
  in
  let ( let* ) = Result.bind in
  let* binary =
    match t.man_binary with
    | None -> Ok None
    | Some (key, size) ->
      let* bytes = fetch "binary" key in
      Ok (Some (bytes, size))
  in
  let* copies =
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        let* bytes = fetch ("copy " ^ e.me_request) e.me_key in
        Ok
          ({
             Bdc.copy_request = e.me_request;
             copy_origin_path = e.me_origin;
             copy_bytes = bytes;
             copy_declared_size = e.me_size;
             copy_description = e.me_description;
           }
           :: acc))
      (Ok []) t.man_entries
  in
  let* probes =
    List.fold_left
      (fun acc p ->
        let* acc = acc in
        let* bytes = fetch ("probe " ^ p.mp_name) p.mp_key in
        Ok
          ({
             Bundle.probe_name = p.mp_name;
             probe_bytes = bytes;
             probe_stack_slug = p.mp_stack;
             probe_declared_size = p.mp_size;
           }
           :: acc))
      (Ok []) t.man_probes
  in
  Ok
    {
      Bundle.created_at = t.man_created_at;
      binary_description = t.man_description;
      binary_bytes = Option.map fst binary;
      binary_declared_size =
        (match binary with Some (_, size) -> size | None -> 0);
      copies = List.rev copies;
      unlocatable = t.man_unlocatable;
      probes = List.rev probes;
      source_discovery = t.man_discovery;
    }

(* Every distinct content key the manifest references. *)
let keys t =
  let all =
    (match t.man_binary with Some (k, _) -> [ k ] | None -> [])
    @ List.map (fun e -> e.me_key) t.man_entries
    @ List.map (fun p -> p.mp_key) t.man_probes
  in
  List.sort_uniq Chash.compare all

(* The transfer-planner view: binary first (the user's scp), then the
   library closure, then the probes — the order the target phase needs
   them in. *)
let wants t =
  (match t.man_binary with
  | Some (key, size) ->
    [
      Feam_depot.Planner.want
        ~label:
          ("binary:" ^ Filename.basename t.man_description.Description.path)
        ~key ~size;
    ]
  | None -> [])
  @ List.map
      (fun e ->
        Feam_depot.Planner.want ~label:e.me_request ~key:e.me_key
          ~size:e.me_size)
      t.man_entries
  @ List.map
      (fun p ->
        Feam_depot.Planner.want ~label:("probe:" ^ p.mp_name) ~key:p.mp_key
          ~size:p.mp_size)
      t.man_probes

let library_bytes t =
  List.fold_left (fun acc e -> acc + e.me_size) 0 t.man_entries

let total_bytes t =
  library_bytes t
  + (match t.man_binary with Some (_, size) -> size | None -> 0)
  + List.fold_left (fun acc p -> acc + p.mp_size) 0 t.man_probes
