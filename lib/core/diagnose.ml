(* Remediation guidance: turns a prediction's determinant record into
   concrete next steps.  The paper's §IV observes that the first three
   determinants can only be fixed by heavyweight means (emulation,
   administrator-installed MPI stacks, a different C library) while
   shared libraries are user-fixable; this module spells those paths out
   for the person reading the report. *)

type severity =
  | User_fixable        (* the scientist can act alone *)
  | Needs_administrator (* requires site privileges *)
  | Needs_rebuild       (* only recompilation can fix it *)

type remedy = {
  severity : severity;
  action : string;
}

let severity_to_string = function
  | User_fixable -> "user-fixable"
  | Needs_administrator -> "needs administrator"
  | Needs_rebuild -> "needs rebuild"

(* -- Static-analysis findings ------------------------------------------- *)

(* The structured diagnostic emitted by the `feam lint` analysis layer
   (lib/analysis).  The type lives here so that reports can carry
   findings and remediation can consume them without the core depending
   on the analysis library. *)

type level = Error | Warn | Info

type finding = {
  rule_id : string;
  level : level;
  subject : string;  (* the object or name the finding is about *)
  message : string;
  fixit : string option;  (* a concrete suggested fix, when one exists *)
}

let level_to_string = function
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"

let level_of_string = function
  | "error" -> Some Error
  | "warn" -> Some Warn
  | "info" -> Some Info
  | _ -> None

let level_rank = function Error -> 0 | Warn -> 1 | Info -> 2

(* Severe first, then by rule id and subject: a stable presentation
   order for reports and lint output. *)
let compare_finding a b =
  let c = compare (level_rank a.level) (level_rank b.level) in
  if c <> 0 then c
  else
    let c = String.compare a.rule_id b.rule_id in
    if c <> 0 then c else String.compare a.subject b.subject

(* Fold lint findings into remediation guidance.  A finding with a fixit
   names a concrete action the scientist can take; an error without one
   needs heavier machinery (the analysis rules reserve fixit-less errors
   for structural problems only a site administrator or rebuild cures). *)
let remedies_of_findings findings =
  findings
  |> List.filter (fun f -> f.level <> Info)
  |> List.sort compare_finding
  |> List.map (fun f ->
         let severity =
           match (f.fixit, f.level) with
           | Some _, _ -> User_fixable
           | None, Error -> Needs_rebuild
           | None, _ -> Needs_administrator
         in
         let action =
           match f.fixit with
           | Some fix -> Printf.sprintf "[%s] %s: %s — %s" f.rule_id f.subject f.message fix
           | None -> Printf.sprintf "[%s] %s: %s" f.rule_id f.subject f.message
         in
         { severity; action })

(* Remedies for one prediction, in determinant order. *)
let remedies (p : Predict.t) : remedy list =
  let d = p.Predict.determinants in
  let isa_remedies =
    if d.Predict.isa.Predict.isa_compatible then []
    else
      [
        {
          severity = Needs_rebuild;
          action =
            Printf.sprintf
              "the binary targets %s hardware: recompile from source at the \
               target, or choose a site with matching hardware (emulation is \
               not practical for MPI workloads)"
              (Feam_elf.Types.machine_uname d.Predict.isa.Predict.binary_machine);
        };
      ]
  in
  let clib_remedies =
    if d.Predict.clib.Predict.clib_compatible then []
    else
      [
        {
          severity = Needs_administrator;
          action =
            Printf.sprintf
              "the site's C library (%s) is older than the binary requires \
               (%s): ask the administrator for a newer compatibility glibc, \
               or rebuild on a system with the site's C library"
              (match d.Predict.clib.Predict.available with
              | Some v -> Feam_util.Version.to_string v
              | None -> "unknown")
              (match d.Predict.clib.Predict.required with
              | Some v -> Feam_util.Version.to_string v
              | None -> "unknown");
        };
      ]
  in
  let stack_remedies =
    match d.Predict.stack with
    | Some sc when not sc.Predict.stack_compatible ->
      if sc.Predict.candidates_found = [] then
        [
          {
            severity = Needs_administrator;
            action =
              (match sc.Predict.requested_impl with
              | Some impl ->
                Printf.sprintf
                  "no %s installation exists at the site: ask the \
                   administrator to install one, or rebuild against an \
                   available implementation"
                  (Feam_mpi.Impl.name impl)
              | None -> "no MPI stack is available at the site");
          };
        ]
      else
        List.map
          (fun (slug, why) ->
            {
              severity = Needs_administrator;
              action =
                Printf.sprintf
                  "stack %s is advertised but failed its probe (%s): report \
                   the misconfiguration to the site administrators" slug why;
            })
          sc.Predict.probe_failures
    | _ -> []
  in
  let libs_remedies =
    match d.Predict.libs with
    | Some lc when not lc.Predict.libs_compatible ->
      List.map
        (fun (name, why) ->
          let is_clib_reject =
            Feam_sysmodel.Str_split.contains ~sub:"C library" why
          in
          {
            severity = (if is_clib_reject then Needs_rebuild else User_fixable);
            action =
              (if is_clib_reject then
                 Printf.sprintf
                   "library %s cannot be supplied by copy (%s): rebuild the \
                    application or the library against the site's C library"
                   name why
               else
                 Printf.sprintf
                   "library %s is missing (%s): obtain a copy from a site \
                    where the binary runs and expose it via LD_LIBRARY_PATH \
                    (FEAM's source phase automates this)"
                   name why);
          })
        lc.Predict.unresolved
    | _ -> []
  in
  isa_remedies @ clib_remedies @ stack_remedies @ libs_remedies

(* Render remediation guidance as report text. *)
let render (p : Predict.t) =
  match remedies p with
  | [] -> "no remediation needed: the site is predicted ready\n"
  | remedies ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf "remediation guidance:\n";
    List.iter
      (fun r ->
        Buffer.add_string buf
          (Printf.sprintf "  [%s] %s\n" (severity_to_string r.severity) r.action))
      remedies;
    Buffer.contents buf
