(* Whole-closure symbol resolution: a simulation of ld.so's
   breadth-first binding over a link scope.

   The library-level determinants (DT_NEEDED presence, soname majors,
   verneed-vs-verdef) ask whether the right *objects* are there; this
   pass asks whether the objects actually *export what the closure
   imports*.  The gap between the two is precisely where the
   soname-major heuristic is unsound: a library can keep its soname
   major yet drop an exported symbol, and only the symbol-level walk
   notices.

   Soundness policy: a miss is only [miss_definitive] when it cannot be
   explained by an object absent from the scope — a versioned import is
   checked only when the verneed-attributed provider is present, and an
   unversioned import only when the whole scope is closed under
   DT_NEEDED (modulo [ignore_needed]).  Everything else is recorded but
   advisory, so the pass never shouts about holes a library-level rule
   already owns. *)

open Feam_elf

type member = { mb_label : string; mb_spec : Spec.t }

type binding = {
  bd_importer : string;
  bd_symbol : string;
  bd_version : string option;
  bd_provider : string;
  bd_provider_pos : int;  (* provider's position in scope order *)
}

type miss = {
  miss_importer : string;
  miss_symbol : string;
  miss_version : string option;
  miss_binding : Spec.sym_binding;
  miss_expected : string option;
      (* the present scope member consulted for the version; [None] for
         unversioned imports, where any member could provide *)
  miss_definitive : bool;
      (* the miss cannot be explained by an absent scope member *)
}

type interposition = {
  ip_symbol : string;
  ip_winner : string;  (* scope member whose definition binds *)
  ip_shadowed : string list;  (* later members also defining the name *)
}

type t = {
  scope : member list;  (* binding scope, breadth-first load order *)
  complete : bool;  (* scope closed under DT_NEEDED (modulo ignores) *)
  bindings : binding list;
  unresolved_strong : miss list;
  unresolved_weak : miss list;
  interpositions : interposition list;
}

(* The scope member ld.so would consult for [name]: the first, in load
   order, loaded under that label or claiming it by DT_SONAME — the
   same convention as {!Feam_dynlinker.Resolve.consulted_provider}. *)
let find_member scope name =
  let rec go pos = function
    | [] -> None
    | m :: rest ->
      if m.mb_label = name || m.mb_spec.Spec.soname = Some name then
        Some (pos, m)
      else go (pos + 1) rest
  in
  go 0 scope

let scope_complete ~ignore_needed scope =
  List.for_all
    (fun m ->
      List.for_all
        (fun n -> ignore_needed n || find_member scope n <> None)
        m.mb_spec.Spec.needed)
    scope

(* name -> definitions in scope order. *)
let definition_index scope =
  let tbl : (string, (int * member * Spec.dynsym) list) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iteri
    (fun pos m ->
      List.iter
        (fun (d : Spec.dynsym) ->
          if d.Spec.sym_defined then
            let prev =
              Option.value (Hashtbl.find_opt tbl d.Spec.sym_name) ~default:[]
            in
            Hashtbl.replace tbl d.Spec.sym_name (prev @ [ (pos, m, d) ]))
        m.mb_spec.Spec.dynsyms)
    scope;
  tbl

(* First definition that satisfies one import.  An unversioned
   reference binds the first definition of the name; a versioned
   reference needs a matching verdef — or a provider that predates
   symbol versioning entirely (no verdefs at all), which ld.so accepts
   with a warning. *)
let bind defs (s : Spec.dynsym) =
  let candidates =
    Option.value (Hashtbl.find_opt defs s.Spec.sym_name) ~default:[]
  in
  (* Scope-table telemetry: a hit means the index answered the lookup
     without rescanning the closure's symbol tables. *)
  Feam_obs.Metrics.incr
    (if candidates = [] then "symcheck.defs_lookup.miss"
     else "symcheck.defs_lookup.hit");
  match s.Spec.sym_version with
  | None -> ( match candidates with [] -> None | c :: _ -> Some c)
  | Some v ->
    List.find_opt
      (fun (_, provider, (d : Spec.dynsym)) ->
        d.Spec.sym_version = Some v || provider.mb_spec.Spec.verdefs = [])
      candidates

(* The file a versioned reference is attributed to: the importer's
   first verneed block listing the version. *)
let expected_file (spec : Spec.t) v =
  List.find_opt (fun vn -> List.mem v vn.Spec.vn_versions) spec.Spec.verneeds
  |> Option.map (fun vn -> vn.Spec.vn_file)

let interpositions_of defs =
  Hashtbl.fold
    (fun name entries acc ->
      let providers =
        List.fold_left
          (fun seen (_, m, _) ->
            if List.mem m.mb_label seen then seen else seen @ [ m.mb_label ])
          [] entries
      in
      match providers with
      | winner :: (_ :: _ as rest) ->
        { ip_symbol = name; ip_winner = winner; ip_shadowed = rest } :: acc
      | _ -> acc)
    defs []
  |> List.sort (fun a b -> String.compare a.ip_symbol b.ip_symbol)

let run ?(ignore_needed = fun _ -> false) scope =
  Feam_obs.Trace.with_span "symcheck.run" @@ fun () ->
  let defs = definition_index scope in
  let complete = scope_complete ~ignore_needed scope in
  let bindings = ref [] in
  let strong = ref [] in
  let weak = ref [] in
  let record m (s : Spec.dynsym) expected definitive =
    let miss =
      {
        miss_importer = m.mb_label;
        miss_symbol = s.Spec.sym_name;
        miss_version = s.Spec.sym_version;
        miss_binding = s.Spec.sym_binding;
        miss_expected = expected;
        miss_definitive = definitive;
      }
    in
    match s.Spec.sym_binding with
    | Spec.Weak -> weak := miss :: !weak
    | Spec.Global -> strong := miss :: !strong
  in
  List.iter
    (fun m ->
      List.iter
        (fun (s : Spec.dynsym) ->
          match bind defs s with
          | Some (pos, p, _) ->
            bindings :=
              {
                bd_importer = m.mb_label;
                bd_symbol = s.Spec.sym_name;
                bd_version = s.Spec.sym_version;
                bd_provider = p.mb_label;
                bd_provider_pos = pos;
              }
              :: !bindings
          | None -> (
            match s.Spec.sym_version with
            | Some v -> (
              match expected_file m.mb_spec v with
              | None ->
                (* versioned reference with no verneed attribution:
                   treated like an unversioned one *)
                record m s None complete
              | Some file -> (
                match find_member scope file with
                | None ->
                  (* the attributed provider is absent: a library-level
                     rule's finding, not a symbol-level one *)
                  ()
                | Some (_, p) -> record m s (Some p.mb_label) true))
            | None -> record m s None complete))
        (Spec.imports m.mb_spec))
    scope;
  let unresolved_strong = List.rev !strong in
  let unresolved_weak = List.rev !weak in
  if unresolved_strong <> [] then
    Feam_obs.Metrics.incr
      ~by:(List.length unresolved_strong)
      ~labels:[ ("binding", "global") ]
      "symcheck.unresolved";
  if unresolved_weak <> [] then
    Feam_obs.Metrics.incr
      ~by:(List.length unresolved_weak)
      ~labels:[ ("binding", "weak") ]
      "symcheck.unresolved";
  Feam_obs.Trace.set_attr "scope" (Feam_obs.Span.Int (List.length scope));
  Feam_obs.Trace.set_attr "unresolved"
    (Feam_obs.Span.Int (List.length unresolved_strong));
  let result =
    {
      scope;
      complete;
      bindings = List.rev !bindings;
      unresolved_strong;
      unresolved_weak;
      interpositions = interpositions_of defs;
    }
  in
  (let open Feam_util in
   let miss_json m =
     Json.Obj
       [
         ("importer", Json.Str m.miss_importer);
         ("symbol", Json.Str m.miss_symbol);
         ( "version",
           match m.miss_version with Some v -> Json.Str v | None -> Json.Null
         );
         ( "expected",
           match m.miss_expected with Some p -> Json.Str p | None -> Json.Null
         );
         ("definitive", Json.Bool m.miss_definitive);
       ]
   in
   Feam_flightrec.Recorder.decision ~determinant:"symcheck"
     ~verdict:(if result.unresolved_strong = [] then "pass" else "fail")
     [
       ( "scope",
         Json.List (List.map (fun m -> Json.Str m.mb_label) result.scope) );
       ("complete", Json.Bool result.complete);
       ("bindings", Json.Int (List.length result.bindings));
       ( "unresolved_strong",
         Json.List (List.map miss_json result.unresolved_strong) );
       ( "unresolved_weak",
         Json.List (List.map miss_json result.unresolved_weak) );
       ( "interpositions",
         Json.List
           (List.map
              (fun ip ->
                Json.Obj
                  [
                    ("symbol", Json.Str ip.ip_symbol);
                    ("winner", Json.Str ip.ip_winner);
                    ( "shadowed",
                      Json.List
                        (List.map (fun s -> Json.Str s) ip.ip_shadowed) );
                  ])
              result.interpositions) );
     ]);
  result

let of_resolve (r : Feam_dynlinker.Resolve.t) =
  let root =
    { mb_label = "a.out"; mb_spec = r.Feam_dynlinker.Resolve.root_spec }
  in
  let libs =
    List.map
      (fun (l : Feam_dynlinker.Resolve.resolved_lib) ->
        {
          mb_label = l.Feam_dynlinker.Resolve.lib_name;
          mb_spec = l.Feam_dynlinker.Resolve.lib_spec;
        })
      r.Feam_dynlinker.Resolve.resolved
  in
  run (root :: libs)

let ok t = not (List.exists (fun m -> m.miss_definitive) t.unresolved_strong)

(* The validator's currency: definitive strong misses, each of which
   refutes the library-level (soname) acceptance of the closure — the
   objects are all there, the symbols are not. *)
let overturns t = List.filter (fun m -> m.miss_definitive) t.unresolved_strong

let symbol_ref symbol version =
  match version with None -> symbol | Some v -> symbol ^ "@" ^ v

let miss_to_string m =
  let where =
    match m.miss_expected with
    | Some p -> Printf.sprintf " (consulted %s)" p
    | None -> ""
  in
  Printf.sprintf "%s: undefined %s symbol %s%s%s" m.miss_importer
    (String.lowercase_ascii (Spec.binding_to_string m.miss_binding))
    (symbol_ref m.miss_symbol m.miss_version)
    where
    (if m.miss_definitive then "" else " [scope incomplete]")

let interposition_to_string i =
  Printf.sprintf "%s: defined by %s, shadowing %s" i.ip_symbol i.ip_winner
    (String.concat ", " i.ip_shadowed)
