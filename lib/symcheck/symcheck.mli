(** Whole-closure symbol resolution: simulates ld.so's breadth-first
    binding over a link scope and reports what fails to bind.

    Where the library-level determinants ask whether the right {e
    objects} are present, this pass asks whether the scope actually
    {e exports what it imports} — the channel on which the soname-major
    heuristic is unsound (a library can keep its major and still drop a
    symbol). *)

(** One scope member: a label (the DT_NEEDED string or bundle label it
    answers to) and its parsed spec. *)
type member = { mb_label : string; mb_spec : Feam_elf.Spec.t }

(** A successful bind of one import to a definition. *)
type binding = {
  bd_importer : string;
  bd_symbol : string;
  bd_version : string option;
  bd_provider : string;
  bd_provider_pos : int;  (** provider's position in scope order *)
}

(** One import no scope definition satisfies. *)
type miss = {
  miss_importer : string;
  miss_symbol : string;
  miss_version : string option;
  miss_binding : Feam_elf.Spec.sym_binding;
  miss_expected : string option;
      (** the present scope member consulted for the version; [None]
          for unversioned imports, where any member could provide *)
  miss_definitive : bool;
      (** the miss cannot be explained by an absent scope member *)
}

(** A symbol defined by more than one scope member: the first
    definition wins, later ones are interposed. *)
type interposition = {
  ip_symbol : string;
  ip_winner : string;
  ip_shadowed : string list;
}

type t = {
  scope : member list;  (** binding scope, breadth-first load order *)
  complete : bool;
      (** scope closed under DT_NEEDED (modulo [ignore_needed]) *)
  bindings : binding list;
  unresolved_strong : miss list;
  unresolved_weak : miss list;
  interpositions : interposition list;
}

(** The scope member consulted for a DT_NEEDED name: first in load
    order loaded under the label or claiming it by soname — the same
    convention as {!Feam_dynlinker.Resolve.consulted_provider}. *)
val find_member : member list -> string -> (int * member) option

(** Simulate binding over a scope given in load order (root first).
    [ignore_needed] marks DT_NEEDED names deliberately outside the
    scope (e.g. the C library in a bundle context) so they do not
    count against completeness. *)
val run : ?ignore_needed:(string -> bool) -> member list -> t

(** Binding scope of a live resolution: the root plus the resolved
    closure in load order. *)
val of_resolve : Feam_dynlinker.Resolve.t -> t

(** No definitive strong miss. *)
val ok : t -> bool

(** Definitive strong misses: each refutes the library-level (soname)
    acceptance of the closure — the objects are all present, the
    symbols are not. *)
val overturns : t -> miss list

(** ["name@VERSION"] or bare [name]. *)
val symbol_ref : string -> string option -> string

val miss_to_string : miss -> string
val interposition_to_string : interposition -> string
