(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation and measures the cost of the computation behind each.

   Layout: one (name, thunk) bench per experiment (Table I-IV, Figures
   1-4, the SVI.C timing/bundle measurements), a hand-rolled
   warmup-then-sample harness (each bench runs a warmup to size its
   batch, then several timed samples feed the bench histogram — so the
   bucket data in BENCH_feam.json reflects real spread, not a single
   point), then the regenerated artifacts themselves, printed in the
   paper's format with the paper's numbers alongside.

   Every run also appends its means to BENCH_history.jsonl, the
   trajectory `feam bench report` (the perf-regression sentinel) reads.

   Usage:  dune exec bench/main.exe            (benches + all artifacts)
           dune exec bench/main.exe -- tables  (artifacts only)
           dune exec bench/main.exe -- bench   (benches only) *)

open Feam_evalharness

let params = Params.default

(* -- Shared fixtures (prepared once, outside measurement) ------------------- *)

(* A small two-site world for the per-figure/table benches: one guaranteed
   environment and one target with a differing GNU runtime, so prediction
   and resolution both do real work. *)
module Fixture = struct
  open Feam_util
  open Feam_sysmodel
  open Feam_mpi

  let v = Version.of_string_exn

  let gnu412 = Compiler.make Compiler.Gnu (v "4.1.2")
  let gnu445 = Compiler.make Compiler.Gnu (v "4.4.5")

  let stack compiler =
    Stack.make ~impl:Impl.Open_mpi ~impl_version:(v "1.4") ~compiler
      ~interconnect:Interconnect.Ethernet

  let batch =
    Batch.make ~queues:[ { Batch.queue_name = "debug"; wait_seconds = 5.0 } ] Batch.Pbs

  let make_site ~name ~glibc ~compiler ~distro_ver =
    let site =
      Site.make ~description:"bench site" ~compilers:[ compiler ] ~seed:4
        ~fault_model:Fault_model.none
        ~machine:Feam_elf.Types.X86_64
        ~distro:(Distro.make Distro.Centos ~version:(v distro_ver) ~kernel:(v "2.6.18"))
        ~glibc:(v glibc) ~interconnect:Interconnect.Infiniband ~batch name
    in
    let installs =
      Feam_toolchain.Provision.provision_site site
        ~stacks:[ (stack compiler, Stack_install.Functioning) ]
    in
    (site, List.hd installs)

  let home, home_install =
    make_site ~name:"bench-home" ~glibc:"2.5" ~compiler:gnu412 ~distro_ver:"5.6"

  let target, _ =
    make_site ~name:"bench-target" ~glibc:"2.12" ~compiler:gnu445 ~distro_ver:"6.1"

  let program = Feam_toolchain.Compile.program ~language:Stack.Fortran "fbench"

  let home_path =
    match
      Feam_toolchain.Compile.compile_mpi_to home home_install program
        ~dir:"/home/user/apps"
    with
    | Ok p -> p
    | Error _ -> failwith "bench fixture compile failed"

  let home_env = Modules_tool.load_stack (Site.base_env home) home_install

  let config = Feam_core.Config.default

  let bundle =
    match
      Feam_core.Phases.source_phase config home home_env ~binary_path:home_path
    with
    | Ok b -> b
    | Error e -> failwith e

  let binary_bytes =
    match Vfs.find (Site.vfs home) home_path with
    | Some { Vfs.kind = Vfs.Elf bytes; _ } -> bytes
    | _ -> failwith "no bytes"

  let stage_binary () =
    Vfs.add (Site.vfs target) "/home/user/migrated/fbench" (Vfs.Elf binary_bytes);
    "/home/user/migrated/fbench"

  let cleanup_target () = Vfs.remove_tree (Site.vfs target) "/tmp/feam"

  (* Corpus of DT_NEEDED lists for the Table I identification bench. *)
  let needed_corpus =
    [
      [ "libmpi.so.0"; "libopen-rte.so.0"; "libnsl.so.1"; "libutil.so.1"; "libc.so.6" ];
      [ "libmpich.so.1"; "libibverbs.so.1"; "libibumad.so.3"; "libc.so.6" ];
      [ "libmpich.so.1"; "libmpichf90.so.1"; "librt.so.1"; "libc.so.6" ];
      [ "libc.so.6"; "libm.so.6" ];
    ]
end

(* -- Benches: one per table / figure ----------------------------------------- *)

let bench_table1 =
  ( "table1/mpi-identification",
    fun () ->
      List.iter
        (fun needed -> ignore (Feam_core.Mpi_ident.identify needed))
        Fixture.needed_corpus )

let bench_table2 =
  ( "table2/site-provisioning",
    fun () -> ignore (Sites.build_site params (List.hd Sites.specs)) )

let bench_table3_basic =
  ( "table3/basic-prediction",
    fun () ->
      Fixture.cleanup_target ();
      let path = Fixture.stage_binary () in
      ignore
        (Feam_core.Phases.target_phase Fixture.config Fixture.target
           (Feam_sysmodel.Site.base_env Fixture.target)
           ~binary_path:path ()) )

let bench_table3_extended =
  ( "table3/extended-prediction",
    fun () ->
      Fixture.cleanup_target ();
      let path = Fixture.stage_binary () in
      ignore
        (Feam_core.Phases.target_phase Fixture.config Fixture.target
           (Feam_sysmodel.Site.base_env Fixture.target)
           ~bundle:Fixture.bundle ~binary_path:path ()) )

let bench_table4 =
  ( "table4/resolution",
    fun () ->
      Fixture.cleanup_target ();
      ignore
        (Feam_core.Resolve_model.resolve Fixture.config Fixture.target
           (Feam_sysmodel.Site.base_env Fixture.target)
           ~bundle:Fixture.bundle
           ~target_glibc:(Some (Feam_sysmodel.Site.glibc Fixture.target))
           ~binary_machine:Feam_elf.Types.X86_64
           ~binary_class:Feam_elf.Types.C64
           ~missing:[ "libgfortran.so.1" ]) )

let bench_fig1 =
  ( "fig1/determinants",
    fun () ->
      Fixture.cleanup_target ();
      let path = Fixture.stage_binary () in
      let env = Feam_sysmodel.Site.base_env Fixture.target in
      let description =
        Result.get_ok (Feam_core.Bdc.describe Fixture.target env ~path)
      in
      let discovery = Feam_core.Edc.discover ~env_type:`Target Fixture.target env in
      ignore
        (Feam_core.Tec.evaluate Fixture.target env
           {
             Feam_core.Tec.config = Fixture.config;
             description;
             binary_path = Some path;
             bundle = None;
             discovery;
           }) )

let bench_fig2 =
  ( "fig2/both-phases",
    fun () ->
      Fixture.cleanup_target ();
      let bundle =
        Result.get_ok
          (Feam_core.Phases.source_phase Fixture.config Fixture.home
             Fixture.home_env ~binary_path:Fixture.home_path)
      in
      ignore
        (Feam_core.Phases.target_phase Fixture.config Fixture.target
           (Feam_sysmodel.Site.base_env Fixture.target)
           ~bundle ()) )

let bench_fig3 =
  ( "fig3/bdc-description",
    fun () ->
      ignore
        (Feam_core.Bdc.describe Fixture.home Fixture.home_env
           ~path:Fixture.home_path) )

let bench_fig4 =
  ( "fig4/edc-discovery",
    fun () ->
      ignore
        (Feam_core.Edc.discover ~env_type:`Target Fixture.target
           (Feam_sysmodel.Site.base_env Fixture.target)) )

let bench_timing =
  ( "timing/ground-truth-execution",
    fun () ->
      Fixture.cleanup_target ();
      let path = Fixture.stage_binary () in
      let env =
        Feam_sysmodel.Modules_tool.load_stack
          (Feam_sysmodel.Site.base_env Fixture.target)
          (List.hd (Feam_sysmodel.Site.stack_installs Fixture.target))
      in
      ignore
        (Feam_dynlinker.Exec.run Fixture.target env ~binary_path:path
           ~mode:(Feam_dynlinker.Exec.Mpi 4)) )

let bench_elf =
  ( "substrate/elf-build-parse",
    fun () ->
      let spec =
        Feam_elf.Spec.make
          ~needed:[ "libmpi.so.0"; "libc.so.6" ]
          ~verneeds:
            [
              {
                Feam_elf.Spec.vn_file = "libc.so.6";
                vn_versions = [ "GLIBC_2.2.5" ];
              };
            ]
          Feam_elf.Types.X86_64
      in
      ignore (Feam_elf.Reader.parse (Feam_elf.Builder.build spec)) )

(* -- Depot benches: content hashing, store round-trip, matrix planning -- *)

(* Payloads the hashing bench chews through: the fixture bundle's
   library images. *)
let depot_payloads =
  List.map
    (fun c -> c.Feam_core.Bdc.copy_bytes)
    Fixture.bundle.Feam_core.Bundle.copies

let bench_depot_hash =
  ( "depot/content-hash",
    fun () ->
      List.iter
        (fun bytes -> ignore (Feam_depot.Chash.of_bytes bytes))
        depot_payloads )

let bench_depot_store =
  ( "depot/store-roundtrip",
    fun () ->
      let store = Feam_depot.Store.create () in
      let manifest = Feam_core.Bundle_manifest.of_bundle store Fixture.bundle in
      ignore (Result.get_ok (Feam_core.Bundle_manifest.to_bundle store manifest))
  )

(* The full NAS+SPEC matrix's (target, wants) cells — built once, lazily,
   so `bench tables` never pays for it; the bench then measures planning
   every cell against a fresh per-site possession index. *)
let depot_matrix_cells =
  lazy
    (let sites = Sites.build_all params in
     let benchmarks = Feam_suites.Npb.all @ Feam_suites.Specmpi.all in
     let binaries = Testset.build params sites benchmarks in
     let stats = Depot_stats.run sites binaries in
     List.map
       (fun c -> (c.Depot_stats.dc_target, c.Depot_stats.dc_wants))
       stats.Depot_stats.ds_cells)

let bench_depot_plan =
  ( "depot/plan-matrix",
    fun () ->
      let cells = Lazy.force depot_matrix_cells in
      let possession = Feam_depot.Planner.Possession.create () in
      List.iter
        (fun (site, wants) ->
          let plan =
            Feam_depot.Planner.compute ~site
              ~possessed:(Feam_depot.Planner.Possession.mem possession ~site)
              wants
          in
          Feam_depot.Planner.Possession.commit possession plan)
        cells )

(* Differential agreement: scenario construction alone (sites built,
   binary compiled, perturbations applied), then the full four-predictor
   pipeline per scenario. *)
let bench_agree_scengen =
  ( "agree/scenario-gen",
    fun () -> ignore (Feam_evalharness.Scengen.build ~seed:42 ~index:0 ()) )

let bench_agree_pipeline =
  ( "agree/full-pipeline",
    fun () ->
      ignore
        (Feam_agree.Harness.run_one
           (Feam_evalharness.Scengen.build ~seed:42 ~index:0 ())) )

(* Fact-base extraction over the fixture bundle: cold (memo reset every
   run, every object parsed) vs warm (first run fills the memo, the
   rest hit).  The spread between the two is what the per-cell Context
   construction saves fleet-wide. *)
let factbase_payloads = lazy (Fixture.binary_bytes :: depot_payloads)

let bench_factbase_cold =
  ( "audit/factbase-cold",
    fun () ->
      Feam_analysis.Factbase.reset ();
      List.iter
        (fun bytes -> ignore (Feam_analysis.Factbase.facts_of_bytes bytes))
        (Lazy.force factbase_payloads) )

let bench_factbase_warm =
  ( "audit/factbase-warm",
    fun () ->
      List.iter
        (fun bytes -> ignore (Feam_analysis.Factbase.facts_of_bytes bytes))
        (Lazy.force factbase_payloads) )

(* Drift observatory: one perturbation epoch over the reduced two-site
   world, evaluated both ways.  full-reeval predicts every cell of the
   perturbed world from scratch; incremental-reeval diffs the epoch
   snapshots and predicts only the cells the invalidation engine marks
   affected.  The headline drift_incremental / full ratio is the
   observatory's whole value proposition. *)
let drift_fixture =
  lazy
    (let specs = Driftrun.small_specs () in
     let benchmarks = Driftrun.small_benchmarks () in
     Feam_core.Bdc.set_describe_memo ();
     let sites0, binaries0 = Driftrun.build_world params specs benchmarks [] in
     let cells0 =
       List.map
         (fun (b, t) -> Driftrun.predict_cell b t)
         (Driftrun.all_cells sites0 binaries0)
     in
     let base =
       Driftrun.snapshot_of_world ~epoch:0 ~seed:42 ~label:"" sites0 binaries0
         ~cells:cells0
     in
     (* The epoch-3 draw: on the small world it removes one non-MPI
        library, invalidating a strict subset of cells — the regime the
        incremental path is built for.  (The epoch-1 draw happens to
        touch every cell, which would bench incremental as full + diff
        overhead.) *)
     let p =
       Driftrun.draw ~seed:42 ~epoch:3
         ~site_names:(List.map Feam_sysmodel.Site.name sites0)
         ~candidates:(Driftrun.removal_candidates sites0)
     in
     let sites, binaries = Driftrun.build_world params specs benchmarks [ p ] in
     let candidate =
       Driftrun.snapshot_of_world ~epoch:1
         ~seed:42 ~label:(Driftrun.perturbation_label p) sites binaries
         ~cells:cells0
     in
     (base, candidate, sites, binaries))

let bench_drift_full =
  ( "drift/full-reeval",
    fun () ->
      let _, _, sites, binaries = Lazy.force drift_fixture in
      List.iter
        (fun (b, t) -> ignore (Driftrun.predict_cell b t))
        (Driftrun.all_cells sites binaries) )

let bench_drift_incremental =
  ( "drift/incremental-reeval",
    fun () ->
      let base, candidate, sites, binaries = Lazy.force drift_fixture in
      let plan = Feam_drift.Invalidate.affected base candidate in
      let reevaluated =
        List.map
          (fun (c : Feam_drift.Invalidate.cell_id) ->
            let binary =
              List.find
                (fun (b : Testset.binary) ->
                  b.Testset.id = c.Feam_drift.Invalidate.ci_binary)
                binaries
            in
            Driftrun.predict_cell binary
              (Sites.find_by_name sites c.Feam_drift.Invalidate.ci_target))
          plan.Feam_drift.Invalidate.pl_affected
      in
      ignore
        (Feam_drift.Invalidate.merge
           ~base:base.Feam_drift.Snapshot.cells ~reevaluated) )

(* Per-cell analysis context over the shared fact base — the unit of
   work `feam lint` and every matrix cell's findings pay. *)
let bench_audit_context =
  ( "audit/context-of-bundle",
    fun () ->
      ignore
        (Feam_analysis.Engine.run
           (Feam_analysis.Context.of_bundle
              ~target:(Feam_analysis.Context.target_of_site Fixture.target)
              Fixture.bundle)) )

(* Resident prediction service: a steady-state query answers from the
   warm verdict table (the < 50 µs/op budget the daemon's design
   targets), while an incremental update pays recapture + store diff +
   re-evaluation of only the affected cells — never a cold pass.  The
   update bench toggles the fir ld cache stale/fresh so every call is a
   real accepted mutation. *)
let serve_fixture =
  lazy
    (let engine = Feam_serve.Engine.create ~seed:42 () in
     let snap = Feam_serve.Engine.snapshot engine in
     let cell = List.hd snap.Feam_drift.Snapshot.cells in
     let line =
       Printf.sprintf {|{"verb":"predict","binary":"%s","target":"%s"}|}
         cell.Feam_drift.Snapshot.cl_binary cell.Feam_drift.Snapshot.cl_target
     in
     (engine, line))

let bench_serve_query =
  ( "serve/steady-state-query",
    fun () ->
      let engine, line = Lazy.force serve_fixture in
      match Feam_serve.Protocol.parse line with
      | Ok req -> ignore (Feam_serve.Engine.handle engine req)
      | Error _ -> assert false )

let serve_toggle = ref false

let bench_serve_update =
  ( "serve/incremental-update",
    fun () ->
      let engine, _ = Lazy.force serve_fixture in
      serve_toggle := not !serve_toggle;
      let action =
        if !serve_toggle then Feam_serve.Protocol.Stale_ld_cache
        else Feam_serve.Protocol.Fresh_ld_cache
      in
      ignore
        (Feam_serve.Engine.handle engine
           (Feam_serve.Protocol.Update_evidence
              { ue_site = "fir"; ue_action = action })) )

let all_benches =
  [
    bench_table1; bench_table2; bench_table3_basic; bench_table3_extended;
    bench_table4; bench_fig1; bench_fig2; bench_fig3; bench_fig4;
    bench_timing; bench_elf; bench_depot_hash; bench_depot_store;
    bench_depot_plan; bench_agree_scengen; bench_agree_pipeline;
    bench_drift_full; bench_drift_incremental;
    bench_factbase_cold; bench_factbase_warm; bench_audit_context;
    bench_serve_query; bench_serve_update;
  ]

(* -- Machine-readable results ------------------------------------------------ *)

(* Every timed sample is observed into the bench.ns_per_run{bench=...}
   histogram, then the registry is read back into BENCH_feam.json at the
   repo root — headline timings for the pipeline stages plus the full
   per-bench histogram summaries.  When a previous BENCH_feam.json
   exists, a one-line geometric-mean comparison against it is printed
   before it is overwritten, and each run's means are appended to
   BENCH_history.jsonl for `feam bench report`. *)
let bench_metric = "bench.ns_per_run"
let bench_file = "BENCH_feam.json"
let history_file = "BENCH_history.jsonl"

(* The headline entries: the per-stage costs a reader checks first. *)
let headline_benches =
  [
    ("basic_prediction", "table3/basic-prediction");
    ("extended_prediction", "table3/extended-prediction");
    ("resolution", "table4/resolution");
    ("bdc_description", "fig3/bdc-description");
    ("edc_discovery", "fig4/edc-discovery");
    ("both_phases", "fig2/both-phases");
    ("depot_plan_matrix", "depot/plan-matrix");
    ("agree_full_pipeline", "agree/full-pipeline");
    ("drift_incremental", "drift/incremental-reeval");
    ("audit_context", "audit/context-of-bundle");
    ("serve_steady_state_query", "serve/steady-state-query");
    ("serve_incremental_update", "serve/incremental-update");
  ]

let mean_of name =
  Option.map Feam_obs.Metrics.hist_mean
    (Feam_obs.Metrics.histogram_value bench_metric ~labels:[ ("bench", name) ])

(* ns_per_op of every bench recorded in a previous BENCH_feam.json.
   [None] when there is no usable baseline — file absent, unparsable, or
   a different schema — so the comparison line can say "no baseline"
   instead of inventing a ratio. *)
let previous_means () =
  if not (Sys.file_exists bench_file) then None
  else
    let text = In_channel.with_open_text bench_file In_channel.input_all in
    match Feam_util.Json.parse text with
    | Error _ -> None
    | Ok json -> (
      match
        ( Option.bind (Feam_util.Json.member "schema" json)
            Feam_util.Json.to_int_opt,
          Option.bind (Feam_util.Json.member "benches" json)
            Feam_util.Json.to_list_opt )
      with
      | Some 1, Some benches ->
        Some
          (List.filter_map
             (fun b ->
               match
                 ( Option.bind
                     (Feam_util.Json.member "name" b)
                     Feam_util.Json.to_string_opt,
                   Feam_util.Json.member "ns_per_op" b )
               with
               | Some name, Some (Feam_util.Json.Float ns) -> Some (name, ns)
               | Some name, Some (Feam_util.Json.Int ns) ->
                 Some (name, float_of_int ns)
               | _ -> None)
             benches)
      | _ -> None)

(* One line: geometric-mean new/old ratio over the benches both runs
   share — or an explicit no-baseline notice on the first run. *)
let compare_with_previous previous names =
  match previous with
  | None ->
    Fmt.pr "vs previous %s: no baseline (first run, or schema mismatch)@."
      bench_file
  | Some previous -> (
    let ratios =
      List.filter_map
        (fun name ->
          match (mean_of name, List.assoc_opt name previous) with
          | Some now, Some before when before > 0.0 && now > 0.0 ->
            Some (now /. before)
          | _ -> None)
        names
    in
    match ratios with
    | [] -> Fmt.pr "vs previous %s: no shared benches to compare@." bench_file
    | _ ->
      let n = List.length ratios in
      let gmean =
        exp (List.fold_left (fun acc r -> acc +. log r) 0.0 ratios /. float_of_int n)
      in
      Fmt.pr "vs previous %s: %.2fx geometric-mean time over %d shared benches (%s)@."
        bench_file gmean n
        (if gmean > 1.02 then "slower"
         else if gmean < 0.98 then "faster"
         else "unchanged"))

let write_bench_json names =
  let open Feam_util.Json in
  let entry name =
    match
      Feam_obs.Metrics.histogram_value bench_metric ~labels:[ ("bench", name) ]
    with
    | None -> Obj [ ("name", Str name) ]
    | Some h ->
      Obj
        [
          ("name", Str name);
          ("iterations", Int h.Feam_obs.Metrics.count);
          ("ns_per_op", Float (Feam_obs.Metrics.hist_mean h));
          ( "bounds_ns",
            List
              (Array.to_list
                 (Array.map (fun b -> Float b) h.Feam_obs.Metrics.bounds)) );
          ( "bucket_counts",
            List
              (Array.to_list
                 (Array.map (fun c -> Int c) h.Feam_obs.Metrics.counts)) );
        ]
  in
  let previous = previous_means () in
  let headline =
    List.filter_map
      (fun (key, name) -> Option.map (fun ns -> (key, Float ns)) (mean_of name))
      headline_benches
  in
  let json =
    Obj
      [
        ("schema", Int 1);
        ("headline_ns_per_op", Obj headline);
        ("benches", List (List.map entry names));
      ]
  in
  Out_channel.with_open_text bench_file (fun oc ->
      Out_channel.output_string oc (render json);
      Out_channel.output_char oc '\n');
  compare_with_previous previous names;
  Fmt.pr "machine-readable results written to %s@." bench_file

(* Append this run to the bench trajectory: one timestamp-free JSONL
   record, sequence numbers strictly increasing down the file.  A
   corrupt history is reported and superseded (fresh file at run 1)
   rather than fatal.  Returns the full trajectory including this run,
   for the inline trend report. *)
let append_history names =
  let benches =
    List.filter_map (fun n -> Option.map (fun m -> (n, m)) (mean_of n)) names
  in
  let previous_runs =
    if not (Sys.file_exists history_file) then Ok []
    else
      Feam_obs.Benchtrend.parse_history
        (In_channel.with_open_text history_file In_channel.input_all)
  in
  match previous_runs with
  | Ok runs ->
    let seq =
      match List.rev runs with
      | [] -> 1
      | last :: _ -> last.Feam_obs.Benchtrend.seq + 1
    in
    let run = { Feam_obs.Benchtrend.seq; benches } in
    Out_channel.with_open_gen
      [ Open_wronly; Open_append; Open_creat; Open_text ]
      0o644 history_file
      (fun oc ->
        Out_channel.output_string oc
          (Feam_obs.Benchtrend.render_history [ run ]));
    Fmt.pr "bench trajectory: run %d appended to %s@." seq history_file;
    runs @ [ run ]
  | Error e ->
    Fmt.epr "warning: %s: %s - starting a fresh history@." history_file e;
    let run = { Feam_obs.Benchtrend.seq = 1; benches } in
    Out_channel.with_open_text history_file (fun oc ->
        Out_channel.output_string oc
          (Feam_obs.Benchtrend.render_history [ run ]));
    [ run ]

(* -- Measurement harness ----------------------------------------------------- *)

let now_ns () = Unix.gettimeofday () *. 1e9

let samples_per_bench = 8
let warmup_min_runs = 3
let warmup_min_ns = 2e6
let sample_target_ns = 4e6
let max_batch = 10_000

(* Warm the bench up (fills caches, forces lazy fixtures), estimate its
   per-run cost, then take [samples_per_bench] timed samples of a batch
   sized to ~[sample_target_ns] each.  Every sample's ns/run lands in
   the bench histogram, so BENCH_feam.json's bucket counts describe a
   real distribution instead of a single point. *)
let measure (name, f) =
  let t0 = now_ns () in
  let rec warm runs =
    f ();
    let elapsed = now_ns () -. t0 in
    if runs < warmup_min_runs || elapsed < warmup_min_ns then warm (runs + 1)
    else (runs, elapsed)
  in
  let runs, elapsed = warm 1 in
  let est = Float.max 1.0 (elapsed /. float_of_int runs) in
  let batch = max 1 (min max_batch (int_of_float (sample_target_ns /. est))) in
  for _ = 1 to samples_per_bench do
    let s0 = now_ns () in
    for _ = 1 to batch do
      f ()
    done;
    let per_run = (now_ns () -. s0) /. float_of_int batch in
    Feam_obs.Metrics.observe ~labels:[ ("bench", name) ] bench_metric per_run
  done;
  (match mean_of name with
  | Some mean ->
    Fmt.pr "  %-36s %14.1f ns/run (%d samples x %d runs)@." name mean
      samples_per_bench batch
  | None -> Fmt.pr "  %-36s (no samples)@." name);
  name

let run_benches () =
  Fmt.pr "## Microbenchmarks (one per table/figure; warmup + %d timed samples)@.@."
    samples_per_bench;
  let names = List.map measure all_benches in
  write_bench_json names;
  let trajectory = append_history names in
  (* The inline (non-gating) trend report `feam bench report` also
     prints from the same history. *)
  print_string (Feam_obs.Benchtrend.render (Feam_obs.Benchtrend.evaluate trajectory));
  Fmt.pr "@."

(* -- Artifact regeneration ----------------------------------------------------- *)

let print_figures () =
  (* Figures 1-4 are architecture/diagram figures; we print their live
     counterparts: the determinant tree, the phase trace, and the BDC/EDC
     outputs for a sample migration. *)
  Fixture.cleanup_target ();
  let path = Fixture.stage_binary () in
  let env = Feam_sysmodel.Site.base_env Fixture.target in
  let description = Result.get_ok (Feam_core.Bdc.describe Fixture.target env ~path) in
  let discovery = Feam_core.Edc.discover ~env_type:`Target Fixture.target env in
  Fmt.pr "## Figure 3 - information gathered by the BDC (sample binary)@.@.%a@.@."
    Feam_core.Description.pp description;
  Fmt.pr "## Figure 4 - information gathered by the EDC (sample site)@.@.%a@.@."
    Feam_core.Discovery.pp discovery;
  let prediction =
    Feam_core.Tec.evaluate Fixture.target env
      {
        Feam_core.Tec.config = Fixture.config;
        description;
        binary_path = Some path;
        bundle = Some Fixture.bundle;
        discovery;
      }
  in
  Fmt.pr "## Figure 1 - prediction-model determinants (evaluated)@.@.%a@.@."
    Feam_core.Predict.pp_determinant_summary prediction;
  let report =
    Feam_core.Report.make ~site_name:"bench-target" ~binary:path prediction
  in
  Fmt.pr "## Figure 2 - phases and components (target-phase report)@.@.%s@."
    (Feam_core.Report.render report)

let print_tables () =
  Fmt.pr "## Regenerating the evaluation (five sites, full corpus)@.@.";
  let sites = Sites.build_all params in
  let benchmarks = Feam_suites.Npb.all @ Feam_suites.Specmpi.all in
  let binaries = Testset.build params sites benchmarks in
  let nas, spec = Testset.count_by_suite binaries in
  Fmt.pr "Test set: %d NPB + %d SPEC MPI2007 binaries (paper: 110 + 147)@.@." nas spec;
  let migrations = Migrate.run_all params sites binaries in
  let t1, t1_note = Tables.table1 binaries in
  Feam_util.Table.print t1;
  Fmt.pr "%s@.(paper reports the identification scheme was 100%% accurate)@.@." t1_note;
  Feam_util.Table.print (Tables.table2 sites);
  Fmt.pr "@.";
  Feam_util.Table.print (Tables.table3 migrations);
  Fmt.pr "(paper: basic 94%% NAS / 92%% SPEC; extended 99%% / 93%%)@.@.";
  Feam_util.Table.print (Tables.table4 migrations);
  Fmt.pr "(paper: before 58%% / 47%%; after 78%% / 66%%; increase 33%% / 39%%)@.@.";
  Feam_util.Table.print (Tables.failure_breakdown migrations);
  let stats = Resolution_impact.missing_lib_breakdown migrations in
  Fmt.pr
    "missing-library failures: %d of %d pre-resolution failures (paper: more \
     than half); %d fixed by resolution (paper: about half)@.@."
    stats.Resolution_impact.missing_lib_failures
    stats.Resolution_impact.failures_before
    stats.Resolution_impact.missing_lib_fixed;
  Feam_util.Table.print (Corpus_stats.table sites binaries);
  Fmt.pr "@.";
  Feam_util.Table.print (Tables.accuracy_by_site migrations);
  Fmt.pr "@.";
  Feam_util.Table.print (Matrix.table (Matrix.build sites migrations));
  Fmt.pr "@.";
  Feam_util.Table.print (Effort.table migrations);
  Fmt.pr "@.";
  (* SVI.C: phase timing and bundle size *)
  let timings = Timing.sample_timings sites binaries in
  Fmt.pr "## SVI.C - phase timing and bundle size@.@.";
  Fmt.pr
    "FEAM phase wall-clock (simulated): max %.1f s across %d sampled \
     migrations (paper: always < 5 min)@."
    (Timing.max_seconds timings) (List.length timings);
  List.iter
    (fun (site, bytes) ->
      Fmt.pr "  library bundle at %-10s : %5.1f MB@." site (Timing.mb bytes))
    (Timing.bundle_report sites binaries);
  Fmt.pr "(paper: per-site bundles averaged ~45 MB)@.@.";
  (* Ablation: contribution of each extended-prediction capability. *)
  Fmt.pr "## Ablation (one full evaluation per variant)@.@.";
  Feam_util.Table.print (Ablation.table (Ablation.run params))

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  (match mode with
  | "bench" -> run_benches ()
  | "tables" ->
    print_figures ();
    print_tables ()
  | _ ->
    run_benches ();
    print_figures ();
    print_tables ());
  Fmt.pr "@.done.@."
